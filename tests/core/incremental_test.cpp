// Tests for incremental mapping extension (core/incremental.h).
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/incremental.h"
#include "core/objective.h"
#include "core/validator.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::extend_mapping;

TEST(ExtendMapping, NoGrowthReturnsBaseUnchanged) {
  const auto cluster = line_cluster(3);
  auto venv = chain_venv(5);
  const auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());
  const auto out = extend_mapping(cluster, venv, *base.mapping);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(out.mapping->guest_host, base.mapping->guest_host);
  EXPECT_EQ(out.mapping->link_paths, base.mapping->link_paths);
  EXPECT_EQ(out.stats.links_routed, 0u);
}

TEST(ExtendMapping, PreservesExistingPlacements) {
  const auto cluster = line_cluster(4);
  auto venv = chain_venv(6);
  const auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());

  // Grow: two new guests, one linked to guest 0, one linking the new pair.
  const GuestId g6 = venv.add_guest({75, 192, 150});
  const GuestId g7 = venv.add_guest({75, 192, 150});
  venv.add_link(GuestId{0}, g6, {2.0, 60.0});
  venv.add_link(g6, g7, {1.0, 60.0});

  const auto out = extend_mapping(cluster, venv, *base.mapping);
  ASSERT_TRUE(out.ok()) << out.detail;
  // Old guests and paths untouched.
  for (std::size_t g = 0; g < base.mapping->guest_host.size(); ++g) {
    EXPECT_EQ(out.mapping->guest_host[g], base.mapping->guest_host[g]);
  }
  for (std::size_t l = 0; l < base.mapping->link_paths.size(); ++l) {
    EXPECT_EQ(out.mapping->link_paths[l], base.mapping->link_paths[l]);
  }
  // Whole grown mapping valid.
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

TEST(ExtendMapping, NewGuestJoinsHeaviestNeighborWhenFitting) {
  const auto cluster = line_cluster(3);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0});
  const auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());

  const GuestId c = venv.add_guest({10, 100, 100});
  venv.add_link(c, a, {5.0, 60.0});
  const auto out = extend_mapping(cluster, venv, *base.mapping);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(out.mapping->guest_host[c.index()],
            out.mapping->guest_host[a.index()]);
}

TEST(ExtendMapping, NewGuestSpillsWhenNeighborHostFull) {
  // Host memory only fits two guests; the third must land elsewhere and
  // its link must be routed.  Zero-CPU guests keep the Migration stage from
  // splitting the co-located pair for balance.
  const auto cluster = line_cluster(2, {1000, 250, 4096});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({0, 100, 10});
  const GuestId b = venv.add_guest({0, 100, 10});
  venv.add_link(a, b, {1.0, 60.0});
  const auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base.mapping->guest_host[a.index()],
            base.mapping->guest_host[b.index()]);

  const GuestId c = venv.add_guest({0, 100, 10});
  venv.add_link(c, a, {2.0, 60.0});
  const auto out = extend_mapping(cluster, venv, *base.mapping);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_NE(out.mapping->guest_host[c.index()],
            out.mapping->guest_host[a.index()]);
  EXPECT_FALSE(out.mapping->link_paths[1].empty());
  EXPECT_EQ(out.stats.links_routed, 1u);
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

TEST(ExtendMapping, FailsWhenNewGuestFitsNowhere) {
  const auto cluster = line_cluster(2, {1000, 250, 4096});
  auto venv = chain_venv(2, {10, 100, 10});
  const auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());
  venv.add_guest({10, 5000, 10});  // cannot fit anywhere
  const auto out = extend_mapping(cluster, venv, *base.mapping);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kHostingFailed);
}

TEST(ExtendMapping, FailsWhenNewLinkUnroutable) {
  const auto cluster = line_cluster(2, {1000, 250, 4096});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 200, 10});
  const GuestId b = venv.add_guest({10, 200, 10});
  venv.add_link(a, b, {1.0, 60.0});
  const auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());
  // Guests a/b ended up on different hosts (memory 250 < 400 combined).
  ASSERT_NE(base.mapping->guest_host[a.index()],
            base.mapping->guest_host[b.index()]);
  // A new link with an impossible latency bound between them.
  venv.add_link(a, b, {1.0, 1.0});  // 1 ms < 5 ms per hop
  const auto out = extend_mapping(cluster, venv, *base.mapping);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kNetworkingFailed);
}

TEST(ExtendMapping, BaseLargerThanGrownRejected) {
  const auto cluster = line_cluster(2);
  auto venv = chain_venv(2);
  core::Mapping fat;
  fat.guest_host.assign(5, n(0));
  fat.link_paths.assign(1, {});
  const auto out = extend_mapping(cluster, venv, fat);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kInvalidInput);
}

TEST(ExtendMapping, RespectsResidualBandwidth) {
  // Base mapping consumes most of the single physical link; the new link's
  // demand must be routed within what remains or fail.
  const auto cluster = line_cluster(2, {1000, 250, 4096}, {10.0, 5.0});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 200, 10});
  const GuestId b = venv.add_guest({10, 200, 10});
  venv.add_link(a, b, {8.0, 60.0});
  const auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());
  venv.add_link(a, b, {5.0, 60.0});  // 8 + 5 > 10: must fail
  const auto out = extend_mapping(cluster, venv, *base.mapping);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kNetworkingFailed);
}

TEST(ExtendMapping, GrowingPaperScenarioStaysValid) {
  // Start from a mapped 2.5:1 instance and grow it by 25% in waves,
  // validating after each extension.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 61);
  const workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  auto venv = workload::make_scenario_venv(sc, cluster, 62);
  auto current = core::HmnMapper().map(cluster, venv, 63);
  ASSERT_TRUE(current.ok());

  util::Rng rng(64);
  for (int wave = 0; wave < 3; ++wave) {
    const std::size_t old_count = venv.guest_count();
    for (int i = 0; i < 10; ++i) {
      const GuestId g = venv.add_guest(
          {rng.uniform(50, 100), rng.uniform(128, 256), rng.uniform(100, 200)});
      // Attach to a random existing guest so the graph stays connected.
      const GuestId peer{static_cast<GuestId::underlying_type>(
          rng.index(old_count))};
      venv.add_link(g, peer, {rng.uniform(0.5, 1.0), rng.uniform(30, 60)});
    }
    const auto grown = core::extend_mapping(cluster, venv, *current.mapping);
    ASSERT_TRUE(grown.ok()) << "wave " << wave << ": " << grown.detail;
    ASSERT_TRUE(core::validate_mapping(cluster, venv, *grown.mapping).ok())
        << "wave " << wave;
    current.mapping = grown.mapping;
  }
}

TEST(MigrationPolicy, BestImprovementAtLeastAsBalanced) {
  // The exhaustive policy can only end at an equal or lower factor.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto cluster = workload::make_paper_cluster(
        workload::ClusterKind::kSwitched, seed);
    const workload::Scenario sc{20.0, 0.01, workload::WorkloadKind::kLowLevel};
    const auto venv = workload::make_scenario_venv(sc, cluster, seed + 9);

    core::HmnOptions paper;
    core::HmnOptions best;
    best.migration.victim = core::VictimPolicy::kBestImprovement;
    const auto a = core::HmnMapper(paper).map(cluster, venv, seed);
    const auto b = core::HmnMapper(best).map(cluster, venv, seed);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LE(core::load_balance_factor(cluster, venv, *b.mapping),
              core::load_balance_factor(cluster, venv, *a.mapping) + 1e-9)
        << "seed " << seed;
    EXPECT_TRUE(core::validate_mapping(cluster, venv, *b.mapping).ok());
  }
}

TEST(MigrationPolicy, BestImprovementFindsMovePaperRuleMisses) {
  // Host 0 holds two guests: a tiny one with zero co-located bandwidth
  // (the paper's victim) and a large one.  Moving the tiny one improves
  // nothing; moving the large one balances.  The paper rule stalls, the
  // exhaustive rule proceeds.
  const auto cluster = line_cluster(2, {1000, 4096, 4096});
  model::VirtualEnvironment venv;
  const GuestId big = venv.add_guest({600, 100, 100});
  const GuestId big2 = venv.add_guest({300, 100, 100});
  const GuestId tiny = venv.add_guest({10, 100, 100});
  venv.add_link(big, big2, {9.0, 60.0});  // big pair colocated by bw
  std::vector<NodeId> placement{n(0), n(0), n(0)};

  auto run = [&](core::VictimPolicy policy) {
    core::ResidualState st(cluster);
    for (const GuestId g : {big, big2, tiny}) st.place(venv.guest(g), n(0));
    auto hosts = placement;
    core::MigrationOptions opts;
    opts.victim = policy;
    return std::pair{core::run_migration(venv, st, hosts, opts), hosts};
  };

  const auto [paper_result, paper_hosts] =
      run(core::VictimPolicy::kMinColocatedBandwidth);
  const auto [best_result, best_hosts] =
      run(core::VictimPolicy::kBestImprovement);
  // The paper's victim (tiny, zero co-located bw) cannot improve the
  // factor: residuals {90, 1000} -> moving 10 MIPS barely changes it...
  // actually moving tiny to host 1 gives {100, 990}, a small improvement,
  // so the paper rule does move it, then stalls.  The exhaustive rule
  // reaches a strictly better final factor by moving a big guest.
  EXPECT_LT(best_result.final_lbf, paper_result.final_lbf);
}

}  // namespace
