// Tests for the workload presets, generators, and scenario factories
// (Table 1 and Section 5.1).
#include <gtest/gtest.h>

#include "workload/host_generator.h"
#include "workload/presets.h"
#include "workload/scenario.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;
using namespace hmn::workload;

TEST(Presets, PaperHostProfileMatchesTable1) {
  const HostProfile p = paper_host_profile();
  EXPECT_DOUBLE_EQ(p.proc_mips.lo, 1000.0);
  EXPECT_DOUBLE_EQ(p.proc_mips.hi, 3000.0);
  EXPECT_DOUBLE_EQ(p.mem_mb.lo, 1024.0);
  EXPECT_DOUBLE_EQ(p.mem_mb.hi, 3072.0);
  EXPECT_DOUBLE_EQ(p.stor_gb.lo, 1024.0);
  EXPECT_DOUBLE_EQ(p.stor_gb.hi, 3072.0);
}

TEST(Presets, PaperLinkPropsMatchesTable1) {
  const auto l = paper_link_props();
  EXPECT_DOUBLE_EQ(l.bandwidth_mbps, 1000.0);
  EXPECT_DOUBLE_EQ(l.latency_ms, 5.0);
}

TEST(Presets, HighLevelProfileMatchesTable1) {
  const GuestProfile p = high_level_profile();
  EXPECT_DOUBLE_EQ(p.mem_mb.lo, 128.0);
  EXPECT_DOUBLE_EQ(p.mem_mb.hi, 256.0);
  EXPECT_DOUBLE_EQ(p.stor_gb.lo, 100.0);
  EXPECT_DOUBLE_EQ(p.stor_gb.hi, 200.0);
  EXPECT_DOUBLE_EQ(p.proc_mips.lo, 50.0);
  EXPECT_DOUBLE_EQ(p.proc_mips.hi, 100.0);
  EXPECT_DOUBLE_EQ(p.link_bw_mbps.lo, 0.5);
  EXPECT_DOUBLE_EQ(p.link_bw_mbps.hi, 1.0);
  EXPECT_DOUBLE_EQ(p.link_lat_ms.lo, 30.0);
  EXPECT_DOUBLE_EQ(p.link_lat_ms.hi, 60.0);
}

TEST(Presets, LowLevelProfileMatchesTable1) {
  const GuestProfile p = low_level_profile();
  EXPECT_DOUBLE_EQ(p.mem_mb.lo, 19.0);
  EXPECT_DOUBLE_EQ(p.mem_mb.hi, 38.0);
  EXPECT_DOUBLE_EQ(p.proc_mips.lo, 19.0);
  EXPECT_DOUBLE_EQ(p.proc_mips.hi, 38.0);
  EXPECT_NEAR(p.link_bw_mbps.lo, 0.087, 1e-12);
  EXPECT_NEAR(p.link_bw_mbps.hi, 0.175, 1e-12);
}

TEST(HostGenerator, DrawsWithinRanges) {
  util::Rng rng(1);
  const auto hosts = generate_hosts(200, paper_host_profile(), rng);
  ASSERT_EQ(hosts.size(), 200u);
  for (const auto& h : hosts) {
    EXPECT_GE(h.proc_mips, 1000.0);
    EXPECT_LE(h.proc_mips, 3000.0);
    EXPECT_GE(h.mem_mb, 1024.0);
    EXPECT_LE(h.mem_mb, 3072.0);
    EXPECT_GE(h.stor_gb, 1024.0);
    EXPECT_LE(h.stor_gb, 3072.0);
  }
}

TEST(HostGenerator, Heterogeneous) {
  util::Rng rng(2);
  const auto hosts = generate_hosts(10, paper_host_profile(), rng);
  bool varied = false;
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    varied |= hosts[i].proc_mips != hosts[0].proc_mips;
  }
  EXPECT_TRUE(varied);
}

TEST(VenvGenerator, GuestAndLinkRangesRespected) {
  util::Rng rng(3);
  VenvGenOptions opts;
  opts.guest_count = 150;
  opts.density = 0.05;
  opts.profile = high_level_profile();
  const auto venv = generate_venv(opts, rng);
  EXPECT_EQ(venv.guest_count(), 150u);
  EXPECT_TRUE(venv.graph().connected());
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    const auto& req = venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)});
    EXPECT_GE(req.mem_mb, 128.0);
    EXPECT_LE(req.mem_mb, 256.0);
    EXPECT_GE(req.proc_mips, 50.0);
    EXPECT_LE(req.proc_mips, 100.0);
  }
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto& d = venv.link(VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)});
    EXPECT_GE(d.bandwidth_mbps, 0.5);
    EXPECT_LE(d.bandwidth_mbps, 1.0);
    EXPECT_GE(d.max_latency_ms, 30.0);
    EXPECT_LE(d.max_latency_ms, 60.0);
  }
}

TEST(VenvGenerator, DensityHonoredAboveTreeFloor) {
  util::Rng rng(4);
  VenvGenOptions opts;
  opts.guest_count = 100;
  opts.density = 0.10;  // 495 edges, well above the 99-edge tree
  opts.profile = low_level_profile();
  const auto venv = generate_venv(opts, rng);
  EXPECT_NEAR(static_cast<double>(venv.link_count()), 495.0, 1.0);
}

TEST(VenvGenerator, NormalizationCapsAggregateDemand) {
  const auto cluster = make_paper_cluster(ClusterKind::kSwitched, 5);
  double cap_mem = 0.0;
  for (const NodeId h : cluster.hosts()) cap_mem += cluster.capacity(h).mem_mb;

  util::Rng rng(6);
  VenvGenOptions opts;
  opts.guest_count = 400;  // 10:1, where raw Table 1 demand is ~96%
  opts.density = 0.015;
  opts.profile = high_level_profile();
  opts.normalize_to = &cluster;
  opts.capacity_fraction = 0.8;
  const auto venv = generate_venv(opts, rng);
  EXPECT_LE(venv.total_vmem_mb(), 0.8 * cap_mem + 1.0);
}

TEST(VenvGenerator, NormalizationIsNoopWhenDemandLow) {
  const auto cluster = make_paper_cluster(ClusterKind::kSwitched, 5);
  util::Rng rng(7);
  VenvGenOptions opts;
  opts.guest_count = 40;  // 1:1 — far below capacity
  opts.density = 0.05;
  opts.profile = high_level_profile();
  opts.normalize_to = &cluster;
  const auto venv = generate_venv(opts, rng);
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    // No scaling: raw Table 1 range preserved.
    EXPECT_GE(venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}).mem_mb, 128.0);
  }
}

TEST(VenvGenerator, DeterministicForSameRngSeed) {
  VenvGenOptions opts;
  opts.guest_count = 50;
  opts.density = 0.05;
  opts.profile = high_level_profile();
  util::Rng r1(9), r2(9);
  const auto v1 = generate_venv(opts, r1);
  const auto v2 = generate_venv(opts, r2);
  ASSERT_EQ(v1.guest_count(), v2.guest_count());
  ASSERT_EQ(v1.link_count(), v2.link_count());
  for (std::size_t g = 0; g < v1.guest_count(); ++g) {
    const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
    EXPECT_DOUBLE_EQ(v1.guest(id).mem_mb, v2.guest(id).mem_mb);
  }
}

TEST(Scenario, LabelFormat) {
  const Scenario s{2.5, 0.015, WorkloadKind::kHighLevel};
  EXPECT_EQ(s.label(), "2.5:1 0.015");
  const Scenario t{20.0, 0.01, WorkloadKind::kLowLevel};
  EXPECT_EQ(t.label(), "20:1 0.01");
}

TEST(Scenario, GuestCountScalesWithHosts) {
  const Scenario s{2.5, 0.015, WorkloadKind::kHighLevel};
  EXPECT_EQ(s.guest_count(40), 100u);
  const Scenario t{50.0, 0.01, WorkloadKind::kLowLevel};
  EXPECT_EQ(t.guest_count(40), 2000u);
}

TEST(Scenario, PaperGridHas16Rows) {
  const auto scenarios = paper_scenarios();
  ASSERT_EQ(scenarios.size(), 16u);
  // First block: high-level, density-major.
  EXPECT_EQ(scenarios[0].label(), "2.5:1 0.015");
  EXPECT_EQ(scenarios[3].label(), "10:1 0.015");
  EXPECT_EQ(scenarios[4].label(), "2.5:1 0.02");
  EXPECT_EQ(scenarios[11].label(), "10:1 0.025");
  // Low-level block.
  EXPECT_EQ(scenarios[12].label(), "20:1 0.01");
  EXPECT_EQ(scenarios[15].label(), "50:1 0.01");
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(scenarios[i].workload, WorkloadKind::kHighLevel);
  }
  for (std::size_t i = 12; i < 16; ++i) {
    EXPECT_EQ(scenarios[i].workload, WorkloadKind::kLowLevel);
  }
}

TEST(Scenario, PaperClusterShapes) {
  const auto torus = make_paper_cluster(ClusterKind::kTorus2D, 1);
  EXPECT_EQ(torus.host_count(), 40u);
  EXPECT_EQ(torus.node_count(), 40u);
  EXPECT_EQ(torus.link_count(), 80u);

  const auto switched = make_paper_cluster(ClusterKind::kSwitched, 1);
  EXPECT_EQ(switched.host_count(), 40u);
  EXPECT_EQ(switched.node_count(), 41u);  // one 64-port switch
  EXPECT_EQ(switched.link_count(), 40u);
}

TEST(Scenario, SameSeedSameHostsAcrossTopologies) {
  // Section 5.1: both clusters are built from the same set of hosts.
  const auto torus = make_paper_cluster(ClusterKind::kTorus2D, 31);
  const auto switched = make_paper_cluster(ClusterKind::kSwitched, 31);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto nh = NodeId{static_cast<NodeId::underlying_type>(i)};
    EXPECT_DOUBLE_EQ(torus.capacity(nh).proc_mips,
                     switched.capacity(nh).proc_mips);
    EXPECT_DOUBLE_EQ(torus.capacity(nh).mem_mb, switched.capacity(nh).mem_mb);
  }
}

TEST(Scenario, VenvMatchesScenarioShape) {
  const auto cluster = make_paper_cluster(ClusterKind::kTorus2D, 3);
  const Scenario s{5.0, 0.02, WorkloadKind::kHighLevel};
  const auto venv = make_scenario_venv(s, cluster, 4);
  EXPECT_EQ(venv.guest_count(), 200u);
  EXPECT_TRUE(venv.graph().connected());
  // Density 0.02 of C(200,2) = 398 links; the spanning-tree floor is 199.
  EXPECT_NEAR(static_cast<double>(venv.link_count()), 398.0, 1.0);
}

}  // namespace
