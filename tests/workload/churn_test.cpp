// Tests for the churn generator: determinism, stream well-formedness, and
// the event-venv materialization helpers.
#include <gtest/gtest.h>

#include <map>

#include "workload/churn.h"

namespace {

using namespace hmn;
using workload::ChurnOptions;
using workload::EventKind;
using workload::TenantEvent;

ChurnOptions small_options() {
  ChurnOptions opts;
  opts.arrival_rate = 0.5;
  opts.horizon = 60.0;
  opts.mean_lifetime = 12.0;
  opts.min_guests = 3;
  opts.max_guests = 6;
  opts.density = 0.25;
  opts.profile = workload::high_level_profile();
  opts.grow_probability = 0.5;
  opts.max_grow_guests = 3;
  return opts;
}

TEST(Churn, IdenticalSeedsGiveIdenticalStreams) {
  const auto a = workload::generate_churn(small_options(), 42);
  const auto b = workload::generate_churn(small_options(), 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
  }
}

TEST(Churn, DifferentSeedsDiverge) {
  const auto a = workload::generate_churn(small_options(), 42);
  const auto b = workload::generate_churn(small_options(), 43);
  EXPECT_NE(a.events, b.events);
}

TEST(Churn, StreamIsSortedAndLifecycleConsistent) {
  for (const auto lifetime : {workload::LifetimeDistribution::kExponential,
                              workload::LifetimeDistribution::kPareto}) {
    ChurnOptions opts = small_options();
    opts.lifetime = lifetime;
    const auto trace = workload::generate_churn(opts, 7);
    ASSERT_FALSE(trace.events.empty());

    double prev = 0.0;
    std::map<std::uint32_t, double> arrived, departed;
    std::map<std::uint32_t, std::size_t> grows;
    for (const TenantEvent& ev : trace.events) {
      EXPECT_GE(ev.time, prev);
      prev = ev.time;
      switch (ev.kind) {
        case EventKind::kArrive:
          EXPECT_FALSE(arrived.count(ev.tenant)) << "duplicate arrival";
          EXPECT_GE(ev.guest_count, opts.min_guests);
          EXPECT_LE(ev.guest_count, opts.max_guests);
          arrived[ev.tenant] = ev.time;
          break;
        case EventKind::kGrow:
          EXPECT_TRUE(arrived.count(ev.tenant));
          EXPECT_FALSE(departed.count(ev.tenant));
          EXPECT_GE(ev.add_guests, 1u);
          ++grows[ev.tenant];
          break;
        case EventKind::kDepart:
          EXPECT_TRUE(arrived.count(ev.tenant));
          EXPECT_FALSE(departed.count(ev.tenant)) << "duplicate departure";
          EXPECT_GE(ev.time, arrived[ev.tenant]);
          departed[ev.tenant] = ev.time;
          break;
      }
    }
    EXPECT_EQ(arrived.size(), departed.size())
        << "every tenant departs, even past the horizon";
    for (const auto& [tenant, n] : grows) EXPECT_LE(n, 1u);
  }
}

TEST(Churn, EventVenvIsDeterministic) {
  const auto trace = workload::generate_churn(small_options(), 11);
  for (const TenantEvent& ev : trace.events) {
    if (ev.kind != EventKind::kArrive) continue;
    const auto a = workload::make_event_venv(trace.profile, ev);
    const auto b = workload::make_event_venv(trace.profile, ev);
    ASSERT_EQ(a.guest_count(), ev.guest_count);
    ASSERT_EQ(a.guest_count(), b.guest_count());
    ASSERT_EQ(a.link_count(), b.link_count());
    for (std::size_t g = 0; g < a.guest_count(); ++g) {
      const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
      EXPECT_DOUBLE_EQ(a.guest(id).mem_mb, b.guest(id).mem_mb);
      EXPECT_DOUBLE_EQ(a.guest(id).proc_mips, b.guest(id).proc_mips);
    }
  }
}

TEST(Churn, ApplyGrowthPreservesBaseAndConnectsNewGuests) {
  const auto profile = workload::high_level_profile();
  model::VirtualEnvironment base;
  const GuestId a = base.add_guest({75, 192, 150});
  const GuestId b = base.add_guest({80, 200, 160});
  base.add_link(a, b, {0.8, 45.0});

  TenantEvent ev;
  ev.kind = EventKind::kGrow;
  ev.add_guests = 3;
  ev.add_links = 2;
  ev.seed = 99;
  const auto grown = workload::apply_growth(base, profile, ev);
  EXPECT_EQ(grown.guest_count(), 5u);
  // Base links first and unchanged, then one attachment per new guest,
  // then the extra links.
  EXPECT_EQ(grown.link_count(), 1u + 3u + 2u);
  EXPECT_DOUBLE_EQ(grown.guest(a).mem_mb, 192.0);
  EXPECT_DOUBLE_EQ(grown.guest(b).mem_mb, 200.0);
  EXPECT_DOUBLE_EQ(grown.link(VirtLinkId{0}).bandwidth_mbps, 0.8);
  // New guests are reachable: each has at least one incident link.
  for (std::size_t g = 2; g < grown.guest_count(); ++g) {
    EXPECT_FALSE(
        grown.links_of(GuestId{static_cast<GuestId::underlying_type>(g)})
            .empty());
  }
  // Deterministic in the event seed.
  const auto again = workload::apply_growth(base, profile, ev);
  EXPECT_EQ(again.guest_count(), grown.guest_count());
  EXPECT_DOUBLE_EQ(again.guest(GuestId{3}).mem_mb,
                   grown.guest(GuestId{3}).mem_mb);
}

}  // namespace
