// Tests for the churn generator: determinism, stream well-formedness, and
// the event-venv materialization helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "testing/fixtures.h"
#include "workload/churn.h"

namespace {

using namespace hmn;
using workload::ChurnOptions;
using workload::EventKind;
using workload::TenantEvent;

ChurnOptions small_options() {
  ChurnOptions opts;
  opts.arrival_rate = 0.5;
  opts.horizon = 60.0;
  opts.mean_lifetime = 12.0;
  opts.min_guests = 3;
  opts.max_guests = 6;
  opts.density = 0.25;
  opts.profile = workload::high_level_profile();
  opts.grow_probability = 0.5;
  opts.max_grow_guests = 3;
  return opts;
}

TEST(Churn, IdenticalSeedsGiveIdenticalStreams) {
  const auto a = workload::generate_churn(small_options(), 42);
  const auto b = workload::generate_churn(small_options(), 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
  }
}

TEST(Churn, DifferentSeedsDiverge) {
  const auto a = workload::generate_churn(small_options(), 42);
  const auto b = workload::generate_churn(small_options(), 43);
  EXPECT_NE(a.events, b.events);
}

TEST(Churn, StreamIsSortedAndLifecycleConsistent) {
  for (const auto lifetime : {workload::LifetimeDistribution::kExponential,
                              workload::LifetimeDistribution::kPareto}) {
    ChurnOptions opts = small_options();
    opts.lifetime = lifetime;
    const auto trace = workload::generate_churn(opts, 7);
    ASSERT_FALSE(trace.events.empty());

    double prev = 0.0;
    std::map<std::uint32_t, double> arrived, departed;
    std::map<std::uint32_t, std::size_t> grows;
    for (const TenantEvent& ev : trace.events) {
      EXPECT_GE(ev.time, prev);
      prev = ev.time;
      switch (ev.kind) {
        case EventKind::kArrive:
          EXPECT_FALSE(arrived.count(ev.tenant)) << "duplicate arrival";
          EXPECT_GE(ev.guest_count, opts.min_guests);
          EXPECT_LE(ev.guest_count, opts.max_guests);
          arrived[ev.tenant] = ev.time;
          break;
        case EventKind::kGrow:
          EXPECT_TRUE(arrived.count(ev.tenant));
          EXPECT_FALSE(departed.count(ev.tenant));
          EXPECT_GE(ev.add_guests, 1u);
          ++grows[ev.tenant];
          break;
        case EventKind::kDepart:
          EXPECT_TRUE(arrived.count(ev.tenant));
          EXPECT_FALSE(departed.count(ev.tenant)) << "duplicate departure";
          EXPECT_GE(ev.time, arrived[ev.tenant]);
          departed[ev.tenant] = ev.time;
          break;
        default:
          FAIL() << "generate_churn emitted a failure event";
      }
    }
    EXPECT_EQ(arrived.size(), departed.size())
        << "every tenant departs, even past the horizon";
    for (const auto& [tenant, n] : grows) EXPECT_LE(n, 1u);
  }
}

TEST(Churn, EventVenvIsDeterministic) {
  const auto trace = workload::generate_churn(small_options(), 11);
  for (const TenantEvent& ev : trace.events) {
    if (ev.kind != EventKind::kArrive) continue;
    const auto a = workload::make_event_venv(trace.profile, ev);
    const auto b = workload::make_event_venv(trace.profile, ev);
    ASSERT_EQ(a.guest_count(), ev.guest_count);
    ASSERT_EQ(a.guest_count(), b.guest_count());
    ASSERT_EQ(a.link_count(), b.link_count());
    for (std::size_t g = 0; g < a.guest_count(); ++g) {
      const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
      EXPECT_DOUBLE_EQ(a.guest(id).mem_mb, b.guest(id).mem_mb);
      EXPECT_DOUBLE_EQ(a.guest(id).proc_mips, b.guest(id).proc_mips);
    }
  }
}

TEST(Churn, ApplyGrowthPreservesBaseAndConnectsNewGuests) {
  const auto profile = workload::high_level_profile();
  model::VirtualEnvironment base;
  const GuestId a = base.add_guest({75, 192, 150});
  const GuestId b = base.add_guest({80, 200, 160});
  base.add_link(a, b, {0.8, 45.0});

  TenantEvent ev;
  ev.kind = EventKind::kGrow;
  ev.add_guests = 3;
  ev.add_links = 2;
  ev.seed = 99;
  const auto grown = workload::apply_growth(base, profile, ev);
  EXPECT_EQ(grown.guest_count(), 5u);
  // Base links first and unchanged, then one attachment per new guest,
  // then the extra links.
  EXPECT_EQ(grown.link_count(), 1u + 3u + 2u);
  EXPECT_DOUBLE_EQ(grown.guest(a).mem_mb, 192.0);
  EXPECT_DOUBLE_EQ(grown.guest(b).mem_mb, 200.0);
  EXPECT_DOUBLE_EQ(grown.link(VirtLinkId{0}).bandwidth_mbps, 0.8);
  // New guests are reachable: each has at least one incident link.
  for (std::size_t g = 2; g < grown.guest_count(); ++g) {
    EXPECT_FALSE(
        grown.links_of(GuestId{static_cast<GuestId::underlying_type>(g)})
            .empty());
  }
  // Deterministic in the event seed.
  const auto again = workload::apply_growth(base, profile, ev);
  EXPECT_EQ(again.guest_count(), grown.guest_count());
  EXPECT_DOUBLE_EQ(again.guest(GuestId{3}).mem_mb,
                   grown.guest(GuestId{3}).mem_mb);
}

// --- Failure streams (alternating-renewal fault injection) ---

workload::FailureOptions failure_options() {
  workload::FailureOptions opts;
  opts.horizon = 50.0;
  opts.host_mttf = 20.0;
  opts.host_mttr = 3.0;
  opts.link_mttf = 15.0;
  opts.link_mttr = 3.0;
  return opts;
}

TEST(Failures, StreamIsDeterministicPerSeed) {
  const auto cluster = hmn::test::line_cluster(4);
  const auto a = workload::generate_failures(failure_options(), cluster, 9);
  const auto b = workload::generate_failures(failure_options(), cluster, 9);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, workload::generate_failures(failure_options(), cluster, 10));
}

TEST(Failures, EveryElementAlternatesFailRecover) {
  // Per element the stream must be FAIL, RECOVER, FAIL, RECOVER, ... with
  // strictly increasing times, ending on a RECOVER — a failure past the
  // horizon still emits its recovery so no element is left dead forever.
  const auto cluster = hmn::test::line_cluster(4);
  const auto events =
      workload::generate_failures(failure_options(), cluster, 17);
  std::map<std::pair<bool, std::uint32_t>, int> pending;  // (is_host, id)
  std::map<std::pair<bool, std::uint32_t>, double> last_time;
  for (const TenantEvent& ev : events) {
    ASSERT_TRUE(workload::is_failure_event(ev.kind));
    const bool is_host = ev.kind == EventKind::kHostFail ||
                         ev.kind == EventKind::kHostRecover;
    const bool is_fail =
        ev.kind == EventKind::kHostFail || ev.kind == EventKind::kLinkFail;
    if (is_host) {
      EXPECT_LT(ev.element, cluster.node_count());
    } else {
      EXPECT_LT(ev.element, cluster.link_count());
    }
    const auto key = std::make_pair(is_host, ev.element);
    EXPECT_EQ(pending[key], is_fail ? 0 : 1)
        << "element " << ev.element << " did not alternate";
    pending[key] += is_fail ? 1 : -1;
    if (last_time.count(key)) {
      EXPECT_GE(ev.time, last_time[key]);
    }
    last_time[key] = ev.time;
    EXPECT_GE(ev.time, 0.0);
  }
  for (const auto& [key, open] : pending) {
    EXPECT_EQ(open, 0) << "unrecovered element " << key.second;
  }
}

TEST(Failures, SameInstantRecoverSortsBeforeFail) {
  // Regression for the event_before tie-break: when a repair of one
  // renewal interval completes at the exact instant the next failure of
  // the same element strikes, the recover must be processed first —
  // otherwise the stale recover would resurrect the freshly dead element.
  TenantEvent recover;
  recover.time = 12.5;
  recover.kind = EventKind::kHostRecover;
  recover.element = 3;
  TenantEvent fail = recover;
  fail.kind = EventKind::kHostFail;
  EXPECT_TRUE(workload::event_before(recover, fail));
  EXPECT_FALSE(workload::event_before(fail, recover));

  recover.kind = EventKind::kLinkRecover;
  fail.kind = EventKind::kLinkFail;
  EXPECT_TRUE(workload::event_before(recover, fail));
  EXPECT_FALSE(workload::event_before(fail, recover));

  recover.kind = EventKind::kBlastRecover;
  fail.kind = EventKind::kBlastFail;
  EXPECT_TRUE(workload::event_before(recover, fail));
  EXPECT_FALSE(workload::event_before(fail, recover));
}

TEST(Failures, AlternationHoldsUnderEveryMttfDistribution) {
  // Property: whatever the up-time shape, each element's stream is
  // strictly FAIL, RECOVER, FAIL, ... with nondecreasing times and every
  // fail matched by a recover.
  const auto cluster = hmn::test::line_cluster(4);
  for (const auto dist : {workload::MttfDistribution::kExponential,
                          workload::MttfDistribution::kWeibull,
                          workload::MttfDistribution::kLognormal}) {
    workload::FailureOptions opts = failure_options();
    opts.mttf_dist = dist;
    const auto events = workload::generate_failures(opts, cluster, 29);
    ASSERT_FALSE(events.empty()) << workload::to_string(dist);
    std::map<std::pair<bool, std::uint32_t>, int> pending;
    std::map<std::pair<bool, std::uint32_t>, double> last_time;
    for (const TenantEvent& ev : events) {
      const bool is_host = ev.kind == EventKind::kHostFail ||
                           ev.kind == EventKind::kHostRecover;
      const bool is_fail =
          ev.kind == EventKind::kHostFail || ev.kind == EventKind::kLinkFail;
      const auto key = std::make_pair(is_host, ev.element);
      EXPECT_EQ(pending[key], is_fail ? 0 : 1)
          << workload::to_string(dist) << " element " << ev.element;
      pending[key] += is_fail ? 1 : -1;
      if (last_time.count(key)) EXPECT_GE(ev.time, last_time[key]);
      last_time[key] = ev.time;
    }
    for (const auto& [key, open] : pending) {
      EXPECT_EQ(open, 0) << workload::to_string(dist) << " unrecovered "
                         << key.second;
    }
  }
}

TEST(Failures, DistributionsProduceDistinctStreamsExponentialUnchanged) {
  // Switching the shape must change the draw, and the exponential path
  // must consume the RNG stream exactly as the pre-distribution generator
  // did (old seeds stay byte-stable): an options struct that never touches
  // mttf_dist equals one that sets kExponential explicitly.
  const auto cluster = hmn::test::line_cluster(4);
  workload::FailureOptions exp_opts = failure_options();
  workload::FailureOptions weibull_opts = failure_options();
  weibull_opts.mttf_dist = workload::MttfDistribution::kWeibull;
  workload::FailureOptions lognorm_opts = failure_options();
  lognorm_opts.mttf_dist = workload::MttfDistribution::kLognormal;

  const auto e = workload::generate_failures(exp_opts, cluster, 31);
  const auto w = workload::generate_failures(weibull_opts, cluster, 31);
  const auto l = workload::generate_failures(lognorm_opts, cluster, 31);
  EXPECT_NE(e, w);
  EXPECT_NE(e, l);
  EXPECT_NE(w, l);

  workload::FailureOptions explicit_exp = failure_options();
  explicit_exp.mttf_dist = workload::MttfDistribution::kExponential;
  EXPECT_EQ(e, workload::generate_failures(explicit_exp, cluster, 31));
}

TEST(Failures, BlastEventsCarrySortedGroupsAndAlternate) {
  // A star cluster: 5 hosts hanging off one switch.  Blast events must
  // target the switch, carry every adjacent host and incident link sorted
  // and duplicate-free, and the recover must repeat its fail's group.
  const auto cluster = model::PhysicalCluster::build(
      topology::star(5),
      std::vector<model::HostCapacity>(5, {1000, 4096, 4096}),
      {1000.0, 5.0});
  workload::FailureOptions opts;
  opts.horizon = 80.0;
  opts.blast_mttf = 20.0;
  opts.blast_mttr = 4.0;
  const auto events = workload::generate_failures(opts, cluster, 37);
  ASSERT_FALSE(events.empty());

  int open = 0;
  std::vector<std::uint32_t> open_hosts, open_links;
  for (const TenantEvent& ev : events) {
    ASSERT_TRUE(ev.kind == EventKind::kBlastFail ||
                ev.kind == EventKind::kBlastRecover);
    EXPECT_FALSE(cluster.is_host(NodeId{ev.element}))
        << "blast element must be a switch";
    EXPECT_FALSE(ev.group_hosts.empty());
    EXPECT_FALSE(ev.group_links.empty());
    EXPECT_TRUE(std::is_sorted(ev.group_hosts.begin(), ev.group_hosts.end()));
    EXPECT_TRUE(std::is_sorted(ev.group_links.begin(), ev.group_links.end()));
    EXPECT_EQ(std::adjacent_find(ev.group_hosts.begin(), ev.group_hosts.end()),
              ev.group_hosts.end());
    EXPECT_EQ(std::adjacent_find(ev.group_links.begin(), ev.group_links.end()),
              ev.group_links.end());
    for (const std::uint32_t h : ev.group_hosts) {
      EXPECT_TRUE(cluster.is_host(NodeId{h}));
    }
    for (const std::uint32_t l : ev.group_links) {
      EXPECT_LT(l, cluster.link_count());
    }
    if (ev.kind == EventKind::kBlastFail) {
      EXPECT_EQ(open, 0);
      open = 1;
      open_hosts = ev.group_hosts;
      open_links = ev.group_links;
    } else {
      EXPECT_EQ(open, 1);
      open = 0;
      EXPECT_EQ(ev.group_hosts, open_hosts);
      EXPECT_EQ(ev.group_links, open_links);
    }
  }
  EXPECT_EQ(open, 0) << "a blast was never recovered";
}

TEST(Failures, ZeroMttfDisablesAClass) {
  const auto cluster = hmn::test::line_cluster(4);
  workload::FailureOptions opts = failure_options();
  opts.host_mttf = 0.0;
  for (const TenantEvent& ev :
       workload::generate_failures(opts, cluster, 21)) {
    EXPECT_TRUE(ev.kind == EventKind::kLinkFail ||
                ev.kind == EventKind::kLinkRecover);
  }
  opts.link_mttf = 0.0;
  EXPECT_TRUE(workload::generate_failures(opts, cluster, 21).empty());
}

TEST(Failures, MergeEventsKeepsCanonicalOrder) {
  const auto cluster = hmn::test::line_cluster(4);
  workload::ChurnTrace trace = workload::generate_churn(small_options(), 3);
  const std::size_t churn_events = trace.events.size();
  auto failures = workload::generate_failures(failure_options(), cluster, 4);
  const std::size_t failure_events = failures.size();
  ASSERT_GT(failure_events, 0u);

  workload::merge_events(trace, std::move(failures));
  EXPECT_EQ(trace.events.size(), churn_events + failure_events);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_FALSE(
        workload::event_before(trace.events[i], trace.events[i - 1]))
        << "event " << i << " out of canonical order";
  }
}

}  // namespace
