// Power-domain striping, failure-domain derivation, and the one-crew
// serialized repair of correlated power outages.
#include <gtest/gtest.h>

#include <algorithm>

#include "model/physical_cluster.h"
#include "testing/fixtures.h"
#include "workload/churn.h"
#include "workload/host_generator.h"
#include "workload/power_domains.h"

namespace {

using namespace hmn;
using namespace hmn::test;

model::PhysicalCluster racked_cluster() {
  return model::PhysicalCluster::build(
      topology::switch_tree(8, 4, 2),
      std::vector<model::HostCapacity>(8, {1000, 4096, 4096}),
      {1000.0, 5.0});
}

TEST(PowerDomainsTest, StripingCutsAcrossHostOrder) {
  const auto cluster = racked_cluster();
  const auto domain = workload::power_domain_assignment(cluster, 3);
  ASSERT_EQ(domain.size(), cluster.node_count());

  const auto& hosts = cluster.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_EQ(domain[hosts[i].index()], i % 3) << "host offset " << i;
  }
  // Switches carry no power domain.
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    const NodeId id{static_cast<NodeId::underlying_type>(n)};
    if (!cluster.is_host(id)) {
      EXPECT_EQ(domain[n], model::FailureDomains::kNone);
    }
  }
}

TEST(PowerDomainsTest, DomainHostListsPartitionTheHosts) {
  const auto cluster = racked_cluster();
  std::vector<std::uint32_t> all;
  for (std::uint32_t d = 0; d < 3; ++d) {
    const auto members = workload::power_domain_hosts(cluster, 3, d);
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    all.insert(all.end(), members.begin(), members.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), cluster.hosts().size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], cluster.hosts()[i].value());
  }
}

TEST(PowerDomainsTest, BlastDomainIsLowestAdjacentSwitch) {
  const auto cluster = racked_cluster();
  const auto fd = workload::derive_failure_domains(cluster, 2);
  for (const NodeId h : cluster.hosts()) {
    std::uint32_t lowest = model::FailureDomains::kNone;
    for (const auto& adj : cluster.graph().neighbors(h)) {
      if (cluster.is_host(adj.neighbor)) continue;
      lowest = std::min(lowest, adj.neighbor.value());
    }
    EXPECT_EQ(fd.blast_domain[h.index()], lowest);
  }
  // Power striping must NOT be congruent with the blast racks: with two
  // leaf switches of four hosts each and a stride of 2, every rack holds
  // hosts of both power domains.
  for (const NodeId h : cluster.hosts()) {
    for (const NodeId other : cluster.hosts()) {
      if (fd.blast_domain[h.index()] == fd.blast_domain[other.index()] &&
          fd.power_domain[h.index()] != fd.power_domain[other.index()]) {
        SUCCEED();
        return;
      }
    }
  }
  ADD_FAILURE() << "striping degenerated to rack-aligned power domains";
}

TEST(PowerDomainsTest, AnnotationInstallsAndValidates) {
  auto cluster = racked_cluster();
  EXPECT_TRUE(cluster.failure_domains().empty());
  workload::annotate_failure_domains(cluster, 4);
  EXPECT_FALSE(cluster.failure_domains().empty());
  EXPECT_EQ(cluster.failure_domains().power_domain,
            workload::power_domain_assignment(cluster, 4));

  model::FailureDomains bad;
  bad.power_domain.assign(3, 0);  // wrong length for this cluster
  EXPECT_THROW(cluster.set_failure_domains(std::move(bad)),
               std::invalid_argument);
}

TEST(PowerDomainsTest, OneCrewSerializesRepairs) {
  const auto cluster = racked_cluster();
  workload::FailureOptions fo;
  fo.horizon = 200.0;
  fo.power_mttf = 10.0;
  fo.power_mttr = 4.0;
  fo.power_domains = 3;
  const auto trace = workload::generate_failures(fo, cluster, 77);

  double last_time = 0.0;
  double last_recover = 0.0;
  std::size_t fails = 0, recovers = 0;
  std::vector<bool> down(fo.power_domains, false);
  for (const auto& ev : trace) {
    EXPECT_GE(ev.time, last_time);  // canonical event order
    last_time = ev.time;
    if (ev.kind == workload::EventKind::kPowerFail) {
      ++fails;
      ASSERT_LT(ev.element, fo.power_domains);  // a domain id, not a node
      EXPECT_FALSE(down[ev.element]);
      down[ev.element] = true;
      EXPECT_EQ(ev.group_hosts, workload::power_domain_hosts(
                                    cluster, fo.power_domains, ev.element));
      EXPECT_FALSE(ev.group_links.empty());
    } else if (ev.kind == workload::EventKind::kPowerRecover) {
      ++recovers;
      ASSERT_LT(ev.element, fo.power_domains);
      EXPECT_TRUE(down[ev.element]);
      down[ev.element] = false;
      // One crew: repairs are serialized, so recoveries are strictly
      // ordered — two domains can be dark at once but never finish
      // repairing at the same instant or out of crew order.
      EXPECT_GT(ev.time, last_recover);
      last_recover = ev.time;
    }
  }
  EXPECT_GT(fails, 2u);          // the stream actually fired
  EXPECT_LE(recovers, fails);    // tail outage may run past the horizon
}

TEST(PowerDomainsTest, PowerStreamIsDeterministic) {
  const auto cluster = racked_cluster();
  workload::FailureOptions fo;
  fo.horizon = 120.0;
  fo.power_mttf = 15.0;
  fo.power_domains = 4;
  const auto a = workload::generate_failures(fo, cluster, 9);
  const auto b = workload::generate_failures(fo, cluster, 9);
  EXPECT_EQ(a, b);

  // Zero-config short-circuit: power_mttf = 0 adds nothing, so legacy
  // streams replay byte-identically.
  workload::FailureOptions off = fo;
  off.power_mttf = 0.0;
  EXPECT_TRUE(workload::generate_failures(off, cluster, 9).empty());
}

}  // namespace
