// End-to-end tests for the multilevel coarsen–map–refine mapper: validity
// against the paper's constraints, byte-identical determinism (including
// across hierarchy sharing and blast-failure churn), the flat fallback
// below min_hosts, and router integration (threads=1 vs N signatures).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/hmn_mapper.h"
#include "core/validator.h"
#include "model/physical_cluster.h"
#include "multilevel/multilevel_mapper.h"
#include "orchestrator/router.h"
#include "topology/topologies.h"
#include "util/rng.h"
#include "workload/presets.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;
using multilevel::MultilevelMapper;
using multilevel::MultilevelOptions;

model::PhysicalCluster make_fabric(std::size_t hosts) {
  auto topo = topology::switch_tree(hosts, 8, 4);
  // Short per-hop latency keeps the workload's 30-60 ms demands satisfiable
  // across the tree diameter at every size used here.
  return model::PhysicalCluster::build(
      std::move(topo),
      std::vector<model::HostCapacity>(hosts, {1000.0, 4096, 4096}),
      model::LinkProps{1000.0, 0.5});
}

model::VirtualEnvironment make_venv(std::size_t guests, std::uint64_t seed,
                                    const model::PhysicalCluster& fabric) {
  util::Rng rng(seed);
  workload::VenvGenOptions vopts;
  vopts.guest_count = guests;
  vopts.density = 0.2;
  vopts.profile = workload::high_level_profile();
  vopts.normalize_to = &fabric;
  return workload::generate_venv(vopts, rng);
}

TEST(MultilevelMapperTest, ProducesValidMappingThroughTheLevels) {
  const auto fabric = make_fabric(512);
  const auto venv = make_venv(24, 7, fabric);

  std::vector<std::string> stages;
  MultilevelOptions opts;
  opts.observer = [&stages](const multilevel::LevelEvent& e) {
    stages.push_back(e.stage);
  };
  const MultilevelMapper mapper(opts);
  const core::MapOutcome out = mapper.map(fabric, venv, 1);
  ASSERT_TRUE(out.ok()) << out.detail;
  // The pyramid was actually used, not the flat fallback.
  EXPECT_GT(out.stats.levels_used, 1u);
  EXPECT_EQ(std::count(stages.begin(), stages.end(), "coarse-solve"), 1);
  EXPECT_EQ(std::count_if(stages.begin(), stages.end(),
                          [](const std::string& s) {
                            return s.rfind("fallback", 0) == 0;
                          }),
            0);

  const auto report = core::validate_mapping(fabric, venv, *out.mapping);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(MultilevelMapperTest, ByteIdenticalAcrossRepeatedRuns) {
  const auto fabric = make_fabric(512);
  const auto venv = make_venv(20, 13, fabric);
  const MultilevelMapper mapper;

  const core::MapOutcome first = mapper.map(fabric, venv, 42);
  ASSERT_TRUE(first.ok()) << first.detail;
  const std::uint64_t fp = core::fingerprint(*first.mapping);
  for (int run = 0; run < 2; ++run) {
    const core::MapOutcome again = mapper.map(fabric, venv, 42);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(core::fingerprint(*again.mapping), fp);
  }
}

TEST(MultilevelMapperTest, SharedHierarchyMatchesLocalBuild) {
  const auto fabric = make_fabric(512);
  const auto venv = make_venv(20, 19, fabric);

  MultilevelOptions opts;
  const MultilevelMapper local(opts);
  auto hier = std::make_shared<const multilevel::PhysicalHierarchy>(
      multilevel::build_hierarchy(fabric, opts.phys));
  ASSERT_TRUE(hier->compatible(fabric));
  const MultilevelMapper shared(opts, hier);

  const core::MapOutcome a = local.map(fabric, venv, 5);
  const core::MapOutcome b = shared.map(fabric, venv, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(core::fingerprint(*a.mapping), core::fingerprint(*b.mapping));
  EXPECT_EQ(a.stats.levels_used, b.stats.levels_used);
}

TEST(MultilevelMapperTest, IncompatibleSharedHierarchyIsRebuiltLocally) {
  const auto fabric = make_fabric(512);
  const auto venv = make_venv(20, 29, fabric);

  MultilevelOptions opts;
  // A hierarchy built over a different fabric must not poison the mapping:
  // compatibility fails and the mapper rebuilds locally.
  const auto other = make_fabric(256);
  auto stale = std::make_shared<const multilevel::PhysicalHierarchy>(
      multilevel::build_hierarchy(other, opts.phys));
  ASSERT_FALSE(stale->compatible(fabric));
  const MultilevelMapper mapper(opts, stale);

  const core::MapOutcome out = mapper.map(fabric, venv, 5);
  ASSERT_TRUE(out.ok()) << out.detail;
  const auto report = core::validate_mapping(fabric, venv, *out.mapping);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(core::fingerprint(*out.mapping),
            core::fingerprint(*MultilevelMapper(opts).map(fabric, venv, 5)
                                   .mapping));
}

TEST(MultilevelMapperTest, DeterministicAcrossBlastFailureAndHeal) {
  const auto fabric = make_fabric(512);
  const auto venv = make_venv(18, 31, fabric);

  MultilevelOptions opts;
  auto hier = std::make_shared<const multilevel::PhysicalHierarchy>(
      multilevel::build_hierarchy(fabric, opts.phys));
  const MultilevelMapper mapper(opts, hier);

  const core::MapOutcome before = mapper.map(fabric, venv, 77);
  ASSERT_TRUE(before.ok());
  const std::uint64_t fp = core::fingerprint(*before.mapping);

  // Blast a rack: failures zero capacities but keep ids stable, so the
  // shared structural hierarchy remains compatible and the mapper routes
  // around the scar (or falls back — either way the mapping must be valid).
  model::PhysicalCluster scarred = fabric;
  scarred.fail_node(fabric.hosts()[0]);
  scarred.fail_node(fabric.hosts()[1]);
  scarred.fail_link(EdgeId{0});
  ASSERT_TRUE(hier->compatible(scarred));
  const core::MapOutcome during = mapper.map(scarred, venv, 77);
  if (during.ok()) {
    const auto report = core::validate_mapping(scarred, venv, *during.mapping);
    EXPECT_TRUE(report.ok()) << report.summary();
    // The failed hosts carry no guests.
    for (const NodeId h : during.mapping->guest_host) {
      EXPECT_NE(h, fabric.hosts()[0]);
      EXPECT_NE(h, fabric.hosts()[1]);
    }
  }

  // Healed (pristine capacities again): byte-identical to the pre-failure
  // mapping — the intervening scarred run left no state behind.
  const core::MapOutcome after = mapper.map(fabric, venv, 77);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(core::fingerprint(*after.mapping), fp);
}

TEST(MultilevelMapperTest, SmallClusterDelegatesToFlatHmn) {
  const auto fabric = make_fabric(64);
  const auto venv = make_venv(12, 41, fabric);

  MultilevelOptions opts;
  opts.min_hosts = 256;  // 64-host fabric sits below the threshold
  const MultilevelMapper mapper(opts);
  const core::HmnMapper flat;

  const core::MapOutcome ml = mapper.map(fabric, venv, 9);
  const core::MapOutcome hmn = flat.map(fabric, venv, 9);
  ASSERT_TRUE(ml.ok());
  ASSERT_TRUE(hmn.ok());
  EXPECT_EQ(ml.stats.levels_used, 0u);
  EXPECT_EQ(core::fingerprint(*ml.mapping), core::fingerprint(*hmn.mapping));
}

TEST(MultilevelMapperTest, RouterDelegationStaysThreadCountInvariant) {
  const auto fabric = make_fabric(256);

  std::vector<orchestrator::AdmissionRequest> requests;
  for (std::size_t i = 0; i < 12; ++i) {
    orchestrator::AdmissionRequest req;
    req.key = static_cast<std::uint32_t>(i + 1);
    req.venv = make_venv(6 + i % 5, util::derive_seed(3, i), fabric);
    req.seed = util::derive_seed(4, i);
    requests.push_back(std::move(req));
  }

  auto run = [&](std::size_t threads) {
    orchestrator::RouterOptions opts;
    opts.shards = 4;
    opts.threads = threads;
    // Route through the multilevel mapper on every shard: the thresholds
    // are tuned down so even ~64-host shards build a real pyramid.
    opts.multilevel_min_hosts = 32;
    opts.multilevel.phys.target_nodes = 16;
    opts.multilevel.virt.target_guests = 4;
    orchestrator::PlacementRouter router(fabric, opts);
    std::size_t admitted = 0;
    for (const auto& d : router.admit_batch(requests, 99)) {
      if (d.admitted) ++admitted;
    }
    return std::pair{admitted, router.decision_signature()};
  };

  const auto [admitted_serial, sig_serial] = run(1);
  const auto [admitted_parallel, sig_parallel] = run(4);
  EXPECT_GT(admitted_serial, 0u);
  EXPECT_EQ(admitted_serial, admitted_parallel);
  EXPECT_EQ(sig_serial, sig_parallel);
}

}  // namespace
