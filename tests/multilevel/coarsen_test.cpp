// Coarsen/uncoarsen invariants for the multilevel pipeline: per-level
// resource and bandwidth conservation, partition structure of the merge
// history, exact round-trip of projections, member-cap enforcement, and
// byte-identical repeatability — for both the virtual and the physical
// coarseners.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "multilevel/physical_coarsener.h"
#include "multilevel/virtual_coarsener.h"
#include "topology/topologies.h"
#include "util/rng.h"
#include "workload/presets.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;
using multilevel::PhysicalCoarsenOptions;
using multilevel::PhysicalHierarchy;
using multilevel::VirtualCoarsenOptions;
using multilevel::VirtualHierarchy;
using multilevel::VirtualLevel;

model::VirtualEnvironment make_venv(std::size_t guests, std::uint64_t seed) {
  util::Rng rng(seed);
  workload::VenvGenOptions vopts;
  vopts.guest_count = guests;
  vopts.density = 0.25;
  vopts.profile = workload::high_level_profile();
  return workload::generate_venv(vopts, rng);
}

GuestId gid(std::size_t i) {
  return GuestId{static_cast<GuestId::underlying_type>(i)};
}

VirtLinkId lid(std::size_t i) {
  return VirtLinkId{static_cast<VirtLinkId::underlying_type>(i)};
}

/// Checks one VirtualLevel against the venv it was built over: members
/// partition the finer guest set, requirements are conserved exactly, and
/// crossing bandwidth is conserved (finer total == coarse total + the
/// finer links that became internal).
void check_level(const model::VirtualEnvironment& finer,
                 const VirtualLevel& level) {
  ASSERT_EQ(level.coarse_of_guest.size(), finer.guest_count());
  ASSERT_EQ(level.coarse_of_link.size(), finer.link_count());
  ASSERT_EQ(level.members.size(), level.coarse.guest_count());

  // members[] is a partition of the finer guests, consistent with
  // coarse_of_guest, ascending within each group.
  std::size_t covered = 0;
  for (std::size_t grp = 0; grp < level.members.size(); ++grp) {
    ASSERT_FALSE(level.members[grp].empty());
    covered += level.members[grp].size();
    model::GuestRequirements sum;
    for (std::size_t i = 0; i < level.members[grp].size(); ++i) {
      const GuestId g = level.members[grp][i];
      EXPECT_EQ(level.coarse_of_guest[g.index()], gid(grp));
      if (i > 0) {
        EXPECT_LT(level.members[grp][i - 1].value(), g.value());
      }
      sum.proc_mips += finer.guest(g).proc_mips;
      sum.mem_mb += finer.guest(g).mem_mb;
      sum.stor_gb += finer.guest(g).stor_gb;
    }
    // Super-guest requirements are the exact member sums.
    EXPECT_DOUBLE_EQ(level.coarse.guest(gid(grp)).proc_mips, sum.proc_mips);
    EXPECT_DOUBLE_EQ(level.coarse.guest(gid(grp)).mem_mb, sum.mem_mb);
    EXPECT_DOUBLE_EQ(level.coarse.guest(gid(grp)).stor_gb, sum.stor_gb);
  }
  EXPECT_EQ(covered, finer.guest_count());

  // Bandwidth conservation: every finer link either became internal or
  // contributes its bandwidth to exactly one coarse link.
  double finer_bw = 0.0, internal_bw = 0.0;
  for (std::size_t l = 0; l < finer.link_count(); ++l) {
    finer_bw += finer.link(lid(l)).bandwidth_mbps;
    const VirtLinkId cl = level.coarse_of_link[l];
    const auto ep = finer.endpoints(lid(l));
    if (!cl.valid()) {
      internal_bw += finer.link(lid(l)).bandwidth_mbps;
      // Internal means the endpoints merged.
      EXPECT_EQ(level.coarse_of_guest[ep.src.index()],
                level.coarse_of_guest[ep.dst.index()]);
      continue;
    }
    // Crossing: the coarse link joins the endpoint groups, its latency
    // bound is at most this member's (strictest member governs), and a
    // critical member makes the trunk critical.
    const auto cep = level.coarse.endpoints(cl);
    const GuestId ga = level.coarse_of_guest[ep.src.index()];
    const GuestId gb = level.coarse_of_guest[ep.dst.index()];
    EXPECT_TRUE((cep.src == ga && cep.dst == gb) ||
                (cep.src == gb && cep.dst == ga));
    EXPECT_LE(level.coarse.link(cl).max_latency_ms,
              finer.link(lid(l)).max_latency_ms);
    if (finer.link(lid(l)).critical) {
      EXPECT_TRUE(level.coarse.link(cl).critical);
    }
  }
  double coarse_bw = 0.0;
  for (std::size_t l = 0; l < level.coarse.link_count(); ++l) {
    coarse_bw += level.coarse.link(lid(l)).bandwidth_mbps;
  }
  EXPECT_NEAR(finer_bw, coarse_bw + internal_bw, 1e-9 * (1.0 + finer_bw));
}

TEST(VirtualCoarsenTest, LevelsConserveResourcesAndBandwidth) {
  const auto base = make_venv(40, 11);
  VirtualCoarsenOptions opts;
  opts.target_guests = 6;
  const VirtualHierarchy h = multilevel::coarsen_virtual(base, opts);
  ASSERT_FALSE(h.empty());

  const model::VirtualEnvironment* finer = &base;
  for (const VirtualLevel& level : h.levels) {
    check_level(*finer, level);
    EXPECT_LT(level.coarse.guest_count(), finer->guest_count());
    finer = &level.coarse;
  }
  // Aggregate demand is invariant across the whole pyramid.
  EXPECT_NEAR(h.coarsest(base).total_vproc_mips(), base.total_vproc_mips(),
              1e-9 * (1.0 + base.total_vproc_mips()));
  EXPECT_NEAR(h.coarsest(base).total_vmem_mb(), base.total_vmem_mb(),
              1e-9 * (1.0 + base.total_vmem_mb()));
}

TEST(VirtualCoarsenTest, MemberCapBoundsSuperGuestSize) {
  const auto base = make_venv(48, 23);
  VirtualCoarsenOptions opts;
  opts.target_guests = 4;
  opts.max_members = 5;
  const VirtualHierarchy h = multilevel::coarsen_virtual(base, opts);
  ASSERT_FALSE(h.empty());

  // Compose the merge history: how many *base* guests each coarsest
  // super-guest absorbed.  The cap applies to that composed count.
  std::vector<std::size_t> owner(base.guest_count());
  for (std::size_t g = 0; g < owner.size(); ++g) owner[g] = g;
  for (const VirtualLevel& level : h.levels) {
    for (auto& o : owner) o = level.coarse_of_guest[o].index();
  }
  std::vector<std::size_t> absorbed(h.coarsest(base).guest_count(), 0);
  for (const std::size_t o : owner) ++absorbed[o];
  for (const std::size_t n : absorbed) {
    EXPECT_LE(n, opts.max_members);
  }
}

TEST(VirtualCoarsenTest, ProjectionRoundTripsExactly) {
  const auto base = make_venv(32, 37);
  VirtualCoarsenOptions opts;
  opts.target_guests = 5;
  const VirtualHierarchy h = multilevel::coarsen_virtual(base, opts);
  ASSERT_FALSE(h.empty());

  // Place each coarsest super-guest on a distinct fake node and give each
  // coarse link a distinct one-edge path.
  const auto& top = h.coarsest(base);
  std::vector<NodeId> coarse_gh(top.guest_count());
  for (std::size_t g = 0; g < coarse_gh.size(); ++g) {
    coarse_gh[g] = NodeId{static_cast<NodeId::underlying_type>(100 + g)};
  }
  std::vector<graph::Path> coarse_paths(top.link_count());
  for (std::size_t l = 0; l < coarse_paths.size(); ++l) {
    coarse_paths[l] = {EdgeId{static_cast<EdgeId::underlying_type>(500 + l)}};
  }

  std::vector<NodeId> gh = coarse_gh;
  std::vector<graph::Path> paths = coarse_paths;
  for (auto it = h.levels.rbegin(); it != h.levels.rend(); ++it) {
    gh = multilevel::project_guest_host(*it, gh);
    paths = multilevel::project_link_paths(*it, paths);
  }
  ASSERT_EQ(gh.size(), base.guest_count());
  ASSERT_EQ(paths.size(), base.link_count());

  // Every base guest lands exactly on its composed super-guest's node.
  std::vector<std::size_t> owner(base.guest_count());
  for (std::size_t g = 0; g < owner.size(); ++g) owner[g] = g;
  for (const VirtualLevel& level : h.levels) {
    for (auto& o : owner) o = level.coarse_of_guest[o].index();
  }
  for (std::size_t g = 0; g < base.guest_count(); ++g) {
    EXPECT_EQ(gh[g], coarse_gh[owner[g]]);
  }
  // Co-located links project to the empty path; crossing links inherit
  // their composed coarse link's path verbatim.
  for (std::size_t l = 0; l < base.link_count(); ++l) {
    const auto ep = base.endpoints(lid(l));
    if (owner[ep.src.index()] == owner[ep.dst.index()]) {
      EXPECT_TRUE(paths[l].empty());
    } else {
      ASSERT_EQ(paths[l].size(), 1u);
      EXPECT_GE(paths[l][0].value(), 500u);
    }
  }
}

TEST(VirtualCoarsenTest, SmallVenvIsNotCoarsened) {
  const auto base = make_venv(8, 3);
  VirtualCoarsenOptions opts;
  opts.target_guests = 12;
  const VirtualHierarchy h = multilevel::coarsen_virtual(base, opts);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(&h.coarsest(base), &base);
}

TEST(VirtualCoarsenTest, DeterministicAcrossCalls) {
  const auto base = make_venv(40, 51);
  VirtualCoarsenOptions opts;
  opts.target_guests = 6;
  const VirtualHierarchy a = multilevel::coarsen_virtual(base, opts);
  const VirtualHierarchy b = multilevel::coarsen_virtual(base, opts);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i].coarse_of_guest, b.levels[i].coarse_of_guest);
    EXPECT_EQ(a.levels[i].coarse_of_link, b.levels[i].coarse_of_link);
    EXPECT_EQ(a.levels[i].coarse.guest_count(),
              b.levels[i].coarse.guest_count());
    EXPECT_EQ(a.levels[i].coarse.link_count(),
              b.levels[i].coarse.link_count());
  }
}

model::PhysicalCluster make_fabric(std::size_t hosts) {
  auto topo = topology::switch_tree(hosts, 8, 4);
  return model::PhysicalCluster::build(
      std::move(topo),
      std::vector<model::HostCapacity>(hosts, {1000.0, 4096, 4096}),
      model::LinkProps{1000.0, 1.0});
}

TEST(PhysicalCoarsenTest, PyramidShrinksAndConserves) {
  const auto base = make_fabric(512);
  PhysicalCoarsenOptions opts;
  opts.target_nodes = 48;
  const PhysicalHierarchy h = multilevel::build_hierarchy(base, opts);
  ASSERT_FALSE(h.contractions.empty());
  EXPECT_TRUE(h.compatible(base));
  EXPECT_EQ(h.level_count(), h.contractions.size() + 1);

  const auto levels = multilevel::materialize_levels(base, h);
  ASSERT_EQ(levels.size(), h.contractions.size());

  double base_mips = 0.0;
  for (const NodeId n : base.hosts()) base_mips += base.capacity(n).proc_mips;

  std::size_t prev_nodes = base.node_count();
  for (const auto& level : levels) {
    // Strictly shrinking, connected, CPU-conserving at every level.
    EXPECT_LT(level.node_count(), prev_nodes);
    prev_nodes = level.node_count();
    EXPECT_TRUE(level.graph().connected());
    double mips = 0.0;
    for (const NodeId n : level.hosts()) mips += level.capacity(n).proc_mips;
    EXPECT_NEAR(mips, base_mips, 1e-9 * (1.0 + base_mips));
  }
  // The coarsest level reached the target (the fabric has enough racks).
  EXPECT_LE(levels.back().node_count(), opts.target_nodes);
}

TEST(PhysicalCoarsenTest, CompatibilityGuardsDifferentFabrics) {
  const auto base = make_fabric(256);
  PhysicalCoarsenOptions opts;
  opts.target_nodes = 32;
  const PhysicalHierarchy h = multilevel::build_hierarchy(base, opts);
  EXPECT_TRUE(h.compatible(base));
  const auto other = make_fabric(128);
  EXPECT_FALSE(h.compatible(other));
}

TEST(PhysicalCoarsenTest, SmallFabricYieldsNoLevels) {
  const auto base = make_fabric(32);
  PhysicalCoarsenOptions opts;
  opts.target_nodes = 96;
  const PhysicalHierarchy h = multilevel::build_hierarchy(base, opts);
  EXPECT_TRUE(h.contractions.empty());
  EXPECT_EQ(h.level_count(), 1u);
}

TEST(PhysicalCoarsenTest, DeterministicAcrossCalls) {
  const auto base = make_fabric(384);
  PhysicalCoarsenOptions opts;
  opts.target_nodes = 48;
  const PhysicalHierarchy a = multilevel::build_hierarchy(base, opts);
  const PhysicalHierarchy b = multilevel::build_hierarchy(base, opts);
  ASSERT_EQ(a.contractions.size(), b.contractions.size());
  for (std::size_t i = 0; i < a.contractions.size(); ++i) {
    EXPECT_EQ(a.contractions[i].group_of_node, b.contractions[i].group_of_node);
    EXPECT_EQ(a.contractions[i].coarse_edge_of,
              b.contractions[i].coarse_edge_of);
  }
}

}  // namespace
