// Additional runner coverage: experiment-spec overrides and vproc scaling.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "expfw/runner.h"

namespace {

using namespace hmn;
using expfw::GridSpec;
using expfw::run_grid;
using workload::ClusterKind;
using workload::Scenario;
using workload::WorkloadKind;

TEST(RunnerExtra, ExperimentSpecOverrideChangesMakespan) {
  const core::HmnMapper mapper;
  GridSpec base;
  base.scenarios = {Scenario{2.5, 0.02, WorkloadKind::kHighLevel}};
  base.clusters = {ClusterKind::kSwitched};
  base.repetitions = 2;
  base.simulate_experiment = true;
  base.experiment.iterations = 2;
  base.experiment.compute_seconds = 1.0;

  GridSpec longer = base;
  longer.experiment.iterations = 8;

  const auto short_runs = run_grid(base, {&mapper});
  const auto long_runs = run_grid(longer, {&mapper});
  ASSERT_EQ(short_runs.size(), long_runs.size());
  for (std::size_t i = 0; i < short_runs.size(); ++i) {
    ASSERT_TRUE(short_runs[i].ok);
    // 4x the iterations -> ~4x the makespan (same mapping, same seed).
    EXPECT_NEAR(long_runs[i].experiment_seconds /
                    short_runs[i].experiment_seconds,
                4.0, 0.5);
  }
}

TEST(RunnerExtra, VprocScaleMultipliesGuestCpuDemand) {
  const auto cluster = workload::make_paper_cluster(ClusterKind::kSwitched, 3);
  Scenario normal{2.5, 0.02, WorkloadKind::kHighLevel};
  Scenario scaled = normal;
  scaled.vproc_scale = 6.0;
  const auto venv_normal = workload::make_scenario_venv(normal, cluster, 4);
  const auto venv_scaled = workload::make_scenario_venv(scaled, cluster, 4);
  ASSERT_EQ(venv_normal.guest_count(), venv_scaled.guest_count());
  // Same seed, same draws: vproc exactly 6x, memory untouched.
  for (std::size_t g = 0; g < venv_normal.guest_count(); ++g) {
    const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
    EXPECT_NEAR(venv_scaled.guest(id).proc_mips,
                6.0 * venv_normal.guest(id).proc_mips, 1e-9);
    EXPECT_DOUBLE_EQ(venv_scaled.guest(id).mem_mb,
                     venv_normal.guest(id).mem_mb);
  }
}

TEST(RunnerExtra, VprocScaleGivesBalancerMoreLeverage) {
  // At the paper's raw demand (7 500 MIPS over a cluster whose capacities
  // alone have ~577 MIPS of spread), no placement can flatten the
  // capacity heterogeneity; at 6x demand the balancing mapper has enough
  // CPU mass to equalize residuals — the measured objective *drops*.
  const core::HmnMapper mapper;
  GridSpec spec;
  spec.scenarios = {Scenario{2.5, 0.02, WorkloadKind::kHighLevel}};
  spec.clusters = {ClusterKind::kSwitched};
  spec.repetitions = 3;
  GridSpec scaled = spec;
  scaled.scenarios[0].vproc_scale = 6.0;

  const auto normal = run_grid(spec, {&mapper});
  const auto heavy = run_grid(scaled, {&mapper});
  double normal_sum = 0, heavy_sum = 0;
  for (const auto& r : normal) normal_sum += r.objective;
  for (const auto& r : heavy) heavy_sum += r.objective;
  EXPECT_LT(heavy_sum, normal_sum);
}

TEST(RunnerExtra, GuestsAndLinksRecorded) {
  const core::HmnMapper mapper;
  GridSpec spec;
  spec.scenarios = {Scenario{2.5, 0.02, WorkloadKind::kHighLevel}};
  spec.clusters = {ClusterKind::kTorus2D};
  spec.repetitions = 1;
  const auto records = run_grid(spec, {&mapper});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].guests, 100u);
  EXPECT_GT(records[0].virtual_links, 0u);
  EXPECT_EQ(records[0].cluster, ClusterKind::kTorus2D);
}

}  // namespace
