// Tests for the experiment framework: grid runner, aggregation, reports.
#include <gtest/gtest.h>

#include "baselines/composite_mappers.h"
#include "core/hmn_mapper.h"
#include "expfw/aggregate.h"
#include "expfw/report.h"
#include "expfw/runner.h"

namespace {

using namespace hmn;
using expfw::GridSpec;
using expfw::GridSummary;
using expfw::RunRecord;
using expfw::run_grid;
using expfw::summarize;
using workload::ClusterKind;
using workload::Scenario;
using workload::WorkloadKind;

GridSpec tiny_spec() {
  GridSpec spec;
  spec.scenarios = {Scenario{2.5, 0.02, WorkloadKind::kHighLevel}};
  spec.clusters = {ClusterKind::kSwitched};
  spec.repetitions = 3;
  spec.threads = 2;
  return spec;
}

TEST(Runner, ProducesOneRecordPerCell) {
  const core::HmnMapper hmn_mapper;
  const auto records = run_grid(tiny_spec(), {&hmn_mapper});
  ASSERT_EQ(records.size(), 3u);  // 1 scenario x 1 cluster x 3 reps
  for (const RunRecord& r : records) {
    EXPECT_EQ(r.mapper, "HMN");
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.guests, 100u);
    EXPECT_GT(r.objective, 0.0);
    EXPECT_GE(r.stats.total_seconds, 0.0);
    EXPECT_LT(r.experiment_seconds, 0.0);  // simulation disabled
  }
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  const core::HmnMapper hmn_mapper;
  auto spec1 = tiny_spec();
  spec1.threads = 1;
  auto spec4 = tiny_spec();
  spec4.threads = 4;
  const auto r1 = run_grid(spec1, {&hmn_mapper});
  const auto r4 = run_grid(spec4, {&hmn_mapper});
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].objective, r4[i].objective);
    EXPECT_EQ(r1[i].repetition, r4[i].repetition);
  }
}

TEST(Runner, SimulateExperimentFillsSeconds) {
  const core::HmnMapper hmn_mapper;
  auto spec = tiny_spec();
  spec.repetitions = 1;
  spec.simulate_experiment = true;
  const auto records = run_grid(spec, {&hmn_mapper});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GT(records[0].experiment_seconds, 0.0);
}

TEST(Runner, MultipleMappersShareInstances) {
  const core::HmnMapper a;
  core::HmnOptions named;
  named.display_name = "HMN2";
  const core::HmnMapper b(named);
  const auto records = run_grid(tiny_spec(), {&a, &b});
  ASSERT_EQ(records.size(), 6u);
  // Identical mappers on the same instance produce identical objectives.
  for (std::size_t i = 0; i < records.size(); i += 2) {
    EXPECT_DOUBLE_EQ(records[i].objective, records[i + 1].objective);
  }
}

TEST(Aggregate, CountsFailuresAndRuns) {
  GridSummary summary;
  RunRecord ok;
  ok.scenario_index = 0;
  ok.cluster = ClusterKind::kTorus2D;
  ok.mapper = "X";
  ok.ok = true;
  ok.objective = 10.0;
  ok.stats.total_seconds = 1.0;
  RunRecord fail = ok;
  fail.ok = false;
  summary.add(ok);
  summary.add(ok);
  summary.add(fail);
  const auto& cell = summary.cell(0, ClusterKind::kTorus2D, "X");
  EXPECT_EQ(cell.runs, 3u);
  EXPECT_EQ(cell.failures, 1u);
  EXPECT_EQ(cell.objective.count(), 2u);
  EXPECT_DOUBLE_EQ(cell.objective.mean(), 10.0);
}

TEST(Aggregate, MissingCellIsEmpty) {
  const GridSummary summary;
  const auto& cell = summary.cell(5, ClusterKind::kSwitched, "nope");
  EXPECT_EQ(cell.runs, 0u);
  EXPECT_EQ(cell.objective.count(), 0u);
}

TEST(Aggregate, TotalFailuresSumsAcrossScenarios) {
  GridSummary summary;
  for (std::size_t s = 0; s < 3; ++s) {
    RunRecord r;
    r.scenario_index = s;
    r.cluster = ClusterKind::kTorus2D;
    r.mapper = "X";
    r.ok = false;
    summary.add(r);
  }
  EXPECT_EQ(summary.total_failures(ClusterKind::kTorus2D, "X"), 3u);
  EXPECT_EQ(summary.total_failures(ClusterKind::kSwitched, "X"), 0u);
}

TEST(Report, ObjectiveTableShapeMatchesPaper) {
  const core::HmnMapper hmn_mapper;
  GridSpec spec = tiny_spec();
  spec.scenarios = {Scenario{2.5, 0.015, WorkloadKind::kHighLevel},
                    Scenario{20.0, 0.01, WorkloadKind::kLowLevel}};
  spec.clusters = {ClusterKind::kTorus2D, ClusterKind::kSwitched};
  spec.repetitions = 2;
  const auto summary = summarize(run_grid(spec, {&hmn_mapper}));
  const auto table = expfw::render_objective_table(
      spec.scenarios, spec.clusters, {"HMN"}, summary);
  const std::string s = table.to_string();
  EXPECT_NE(s.find("2-D Torus HMN"), std::string::npos);
  EXPECT_NE(s.find("Switched HMN"), std::string::npos);
  EXPECT_NE(s.find("2.5:1 0.015"), std::string::npos);
  EXPECT_NE(s.find("20:1 0.01"), std::string::npos);
  EXPECT_NE(s.find("Failures"), std::string::npos);
}

TEST(Report, FailedCellsPrintDash) {
  GridSummary summary;
  RunRecord fail;
  fail.scenario_index = 0;
  fail.cluster = ClusterKind::kTorus2D;
  fail.mapper = "X";
  fail.ok = false;
  summary.add(fail);
  const std::vector<Scenario> scenarios{
      Scenario{2.5, 0.015, WorkloadKind::kHighLevel}};
  const auto table = expfw::render_objective_table(
      scenarios, {ClusterKind::kTorus2D}, {"X"}, summary);
  // The data row shows "-" and the failure row shows 1.
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("2.5:1 0.015,-"), std::string::npos);
  EXPECT_NE(csv.find("Failures,1"), std::string::npos);
}

TEST(Report, TimeTableHasMeans) {
  const core::HmnMapper hmn_mapper;
  const GridSpec spec = tiny_spec();
  const auto summary = summarize(run_grid(spec, {&hmn_mapper}));
  const auto table = expfw::render_time_table(spec.scenarios, spec.clusters,
                                              {"HMN"}, summary);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NE(table.to_string().find("2.5:1 0.02"), std::string::npos);
}

TEST(Report, Figure1SeriesSortedByLinks) {
  const core::HmnMapper hmn_mapper;
  GridSpec spec;
  spec.scenarios = {Scenario{5.0, 0.02, WorkloadKind::kHighLevel},
                    Scenario{2.5, 0.02, WorkloadKind::kHighLevel}};
  spec.clusters = {ClusterKind::kTorus2D};
  spec.repetitions = 2;
  const auto summary = summarize(run_grid(spec, {&hmn_mapper}));
  const auto pts = expfw::figure1_series(spec.scenarios,
                                         ClusterKind::kTorus2D, "HMN",
                                         summary);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_LE(pts[0].x, pts[1].x);
  const std::string rendered =
      expfw::render_series(pts, "links", "map time (s)");
  EXPECT_NE(rendered.find("links"), std::string::npos);
  EXPECT_NE(rendered.find('#'), std::string::npos);
}

TEST(Report, Figure1SkipsAllFailedCells) {
  GridSummary summary;
  RunRecord fail;
  fail.scenario_index = 0;
  fail.cluster = ClusterKind::kTorus2D;
  fail.mapper = "X";
  fail.ok = false;
  summary.add(fail);
  const std::vector<Scenario> scenarios{
      Scenario{2.5, 0.015, WorkloadKind::kHighLevel}};
  EXPECT_TRUE(expfw::figure1_series(scenarios, ClusterKind::kTorus2D, "X",
                                    summary)
                  .empty());
}

}  // namespace
