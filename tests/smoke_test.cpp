// End-to-end smoke test: HMN maps a small virtual environment onto a torus
// and the result satisfies every formal constraint.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "topology/topologies.h"

namespace {

using namespace hmn;

TEST(Smoke, HmnMapsSmallTorus) {
  auto topo = topology::torus_2d(3, 3);
  std::vector<model::HostCapacity> caps(9, {2000.0, 2048.0, 2048.0});
  auto cluster = model::PhysicalCluster::build(
      std::move(topo), caps, model::LinkProps{1000.0, 5.0});

  model::VirtualEnvironment venv;
  std::vector<GuestId> guests;
  for (int i = 0; i < 20; ++i) {
    guests.push_back(venv.add_guest({75.0, 192.0, 150.0}));
  }
  for (int i = 1; i < 20; ++i) {
    venv.add_link(guests[static_cast<std::size_t>(i - 1)],
                  guests[static_cast<std::size_t>(i)],
                  {0.75, 45.0});
  }

  core::HmnMapper mapper;
  const auto outcome = mapper.map(cluster, venv, 42);
  ASSERT_TRUE(outcome.ok()) << outcome.detail;

  const auto report = core::validate_mapping(cluster, venv, *outcome.mapping);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(core::load_balance_factor(cluster, venv, *outcome.mapping), 0.0);
}

}  // namespace
