// The write-ahead journal layer: record grammar round-trips, the WalManager
// observer journals a live run with the promised structure, checkpoints
// land on cadence, the JSONL converter renders every record, and the
// checkpoint codec restores a bit-identical orchestrator.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "io/binfmt.h"
#include "recovery/checkpoint.h"
#include "recovery/journal.h"
#include "recovery/recovery.h"
#include "testing/fixtures.h"
#include "recovery/harness.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::Orchestrator;
using recovery::JournalParse;
using recovery::JournalRecord;
using recovery::JournalWriter;
using recovery::RecordType;
using recovery::RecoveryError;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

workload::TenantEvent sample_event() {
  workload::TenantEvent ev;
  ev.time = 2.25;
  ev.kind = workload::EventKind::kArrive;
  ev.tenant = 42;
  ev.guest_count = 5;
  ev.density = 0.375;
  ev.seed = 0xFEEDFACE12345678ull;
  ev.sla_tier = model::SlaTier::kGold;
  ev.replica_n = 3;
  ev.replica_k = 2;
  return ev;
}

TEST(JournalTest, RecordsRoundTripThroughParse) {
  std::string journal;
  JournalWriter w(journal);
  const auto ev = sample_event();
  w.event_begin(0, ev);
  orchestrator::TxnRecord txn;
  txn.kind = orchestrator::TxnKind::kAdmitCommit;
  txn.time = 2.25;
  txn.key = 42;
  txn.detail = 0xABCDABCDull;
  w.txn(txn);
  w.event_end(0, 2.25, 0x1234u);
  w.checkpoint(1, 0x1234u, "opaque-state-bytes");
  EXPECT_EQ(w.next_seq(), 4u);

  const JournalParse parse = recovery::parse_journal(journal);
  EXPECT_FALSE(parse.torn_tail);
  EXPECT_EQ(parse.valid_bytes, journal.size());
  ASSERT_EQ(parse.records.size(), 4u);

  EXPECT_EQ(parse.records[0].type, RecordType::kEventBegin);
  EXPECT_EQ(parse.records[0].event_index, 0u);
  EXPECT_EQ(parse.records[0].event, ev);  // full embedded event survives

  EXPECT_EQ(parse.records[1].type, RecordType::kTxn);
  EXPECT_EQ(parse.records[1].txn.kind, orchestrator::TxnKind::kAdmitCommit);
  EXPECT_EQ(parse.records[1].txn.key, 42u);
  EXPECT_EQ(parse.records[1].txn.detail, 0xABCDABCDull);

  EXPECT_EQ(parse.records[2].type, RecordType::kEventEnd);
  EXPECT_EQ(parse.records[2].fingerprint, 0x1234u);

  EXPECT_EQ(parse.records[3].type, RecordType::kCheckpoint);
  EXPECT_EQ(parse.records[3].event_index, 1u);
  EXPECT_EQ(parse.records[3].checkpoint, "opaque-state-bytes");
}

TEST(JournalTest, MalformedRecordPayloadIsDescriptive) {
  // A frame whose CRC passes but whose payload is not a record: version
  // skew, not bit rot — the error names the record and the defect.
  std::string journal;
  io::append_frame(journal, "\x09garbage");
  try {
    (void)recovery::parse_journal(journal);
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    EXPECT_TRUE(contains(e.what(), "record 0")) << e.what();
    EXPECT_TRUE(contains(e.what(), "unknown record type 9")) << e.what();
  }
}

TEST(JournalTest, ArmedCrashPersistsTornPrefixAndThrows) {
  std::string journal;
  JournalWriter w(journal);
  w.event_end(0, 1.0, 7);
  const std::size_t intact = journal.size();

  JournalWriter armed(journal, w.next_seq());
  armed.arm_crash(/*record_seq=*/1, /*torn_seed=*/5);
  try {
    armed.event_end(1, 2.0, 8);
    FAIL() << "expected CrashError";
  } catch (const recovery::CrashError& e) {
    EXPECT_EQ(e.seq(), 1u);
    EXPECT_EQ(e.persisted_bytes(), 5u);
  }
  EXPECT_EQ(journal.size(), intact + 5);

  // The torn tail scans away; the intact prefix survives.
  const JournalParse parse = recovery::parse_journal(journal);
  EXPECT_TRUE(parse.torn_tail);
  EXPECT_EQ(parse.valid_bytes, intact);
  ASSERT_EQ(parse.records.size(), 1u);
}

TEST(JournalTest, WalManagerJournalsALiveRunWithGroupStructure) {
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0xE18u);
  ASSERT_GT(trace.events.size(), 30u);

  std::string journal;
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = 8;
  Orchestrator orch(cluster, trace.profile, recovery_options());
  recovery::WalManager wal(orch, journal, wopts);
  for (const auto& ev : trace.events) orch.handle(ev);

  const JournalParse parse = recovery::parse_journal(journal);
  EXPECT_FALSE(parse.torn_tail);

  // Grammar: every event is one BEGIN .. END group; indices are dense;
  // the END fingerprint chain is non-decreasing in information (final one
  // matches the live orchestrator); checkpoints land on the cadence.
  std::uint64_t expect_index = 0;
  bool open = false;
  std::size_t checkpoints = 0;
  std::uint64_t last_fingerprint = 0;
  for (const JournalRecord& rec : parse.records) {
    switch (rec.type) {
      case RecordType::kEventBegin:
        EXPECT_FALSE(open);
        EXPECT_EQ(rec.event_index, expect_index);
        open = true;
        break;
      case RecordType::kEventEnd:
        EXPECT_TRUE(open);
        EXPECT_EQ(rec.event_index, expect_index);
        open = false;
        ++expect_index;
        last_fingerprint = rec.fingerprint;
        break;
      case RecordType::kTxn:
        EXPECT_TRUE(open);  // txns only inside a group
        break;
      case RecordType::kCheckpoint:
        EXPECT_FALSE(open);  // checkpoints between groups
        EXPECT_EQ(rec.event_index % wopts.checkpoint_every_events, 0u);
        EXPECT_EQ(rec.event_index, expect_index);
        ++checkpoints;
        break;
    }
  }
  EXPECT_FALSE(open);
  EXPECT_EQ(expect_index, trace.events.size());
  EXPECT_EQ(checkpoints,
            trace.events.size() / wopts.checkpoint_every_events);
  EXPECT_EQ(last_fingerprint, orch.run_fingerprint());
  EXPECT_NE(orch.run_fingerprint(), orchestrator::kFingerprintSeed);
}

TEST(JournalTest, JsonlRendersEveryRecordAndTornTail) {
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0xE18u);
  std::string journal;
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = 16;
  {
    Orchestrator orch(cluster, trace.profile, recovery_options());
    recovery::WalManager wal(orch, journal, wopts);
    for (const auto& ev : trace.events) orch.handle(ev);
  }
  const JournalParse parse = recovery::parse_journal(journal);

  const std::string jsonl = recovery::journal_to_jsonl(journal);
  // One line per record, every record type rendered.
  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, parse.records.size());
  EXPECT_TRUE(contains(jsonl, "\"type\":\"event-begin\""));
  EXPECT_TRUE(contains(jsonl, "\"type\":\"txn\""));
  EXPECT_TRUE(contains(jsonl, "\"type\":\"event-end\""));
  EXPECT_TRUE(contains(jsonl, "\"type\":\"checkpoint\""));
  EXPECT_TRUE(contains(jsonl, "\"state_bytes\":"));

  // A torn journal renders the torn-tail marker with the byte accounting.
  std::string torn = journal;
  torn += "\x20\x00\x00\x00half-a-frame";
  const std::string torn_jsonl = recovery::journal_to_jsonl(torn);
  EXPECT_TRUE(contains(torn_jsonl, "\"type\":\"torn-tail\"")) << torn_jsonl;
  EXPECT_TRUE(contains(torn_jsonl,
                       "\"valid_bytes\":" + std::to_string(journal.size())));
}

TEST(CheckpointTest, StateRoundTripsBitIdentical) {
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0xC0DEu);
  // Stop mid-trace so the exported state is rich: live tenants, queue
  // entries, failure masks all populated.
  Orchestrator orch(cluster, trace.profile, recovery_options());
  for (std::size_t i = 0; i < trace.events.size() * 2 / 3; ++i) {
    orch.handle(trace.events[i]);
  }
  ASSERT_GT(orch.tenancy().tenant_count(), 0u);

  const std::string encoded = recovery::encode_state(orch.export_state());
  // decode -> restore into a fresh orchestrator -> re-export: the encoded
  // bytes must be identical, which covers every field the codec carries.
  Orchestrator restored(cluster, trace.profile, recovery_options());
  restored.restore_state(recovery::decode_state(encoded));
  EXPECT_EQ(recovery::encode_state(restored.export_state()), encoded);
  EXPECT_EQ(restored.run_fingerprint(), orch.run_fingerprint());
  EXPECT_EQ(restored.events_handled(), orch.events_handled());
  EXPECT_EQ(restored.tenancy().tenant_count(), orch.tenancy().tenant_count());

  // And the restored orchestrator keeps *running* identically: feeding the
  // same tail to both produces the same fingerprint.
  workload::TenantEvent probe;
  probe.time = trace.events.empty() ? 1.0 : trace.events.back().time + 1.0;
  probe.kind = workload::EventKind::kArrive;
  probe.tenant = 9999;
  probe.guest_count = 2;
  probe.density = 0.0;
  probe.seed = 77;
  orch.handle(probe);
  restored.handle(probe);
  EXPECT_EQ(restored.run_fingerprint(), orch.run_fingerprint());
  // The restored report only retains post-restore decisions; their
  // canonical form must equal the tail of the uninterrupted signature.
  const std::string full = orch.report().decision_signature();
  const std::string tail = restored.report().decision_signature();
  ASSERT_LE(tail.size(), full.size());
  EXPECT_EQ(full.substr(full.size() - tail.size()), tail);
}

TEST(CheckpointTest, CorruptStateFailsLoudly) {
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0xC0DEu);
  Orchestrator orch(cluster, trace.profile, recovery_options());
  for (std::size_t i = 0; i < trace.events.size() / 2; ++i) {
    orch.handle(trace.events[i]);
  }
  const std::string encoded = recovery::encode_state(orch.export_state());

  // Truncation at any of a few depths: descriptive, never UB.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                encoded.size() / 2, encoded.size() - 1}) {
    EXPECT_THROW((void)recovery::decode_state(encoded.substr(0, cut)),
                 RecoveryError)
        << "cut at " << cut;
  }
  // A wrong version byte is refused before anything is interpreted.
  std::string wrong = encoded;
  wrong[0] = char(99);
  try {
    (void)recovery::decode_state(wrong);
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    EXPECT_TRUE(contains(e.what(), "version")) << e.what();
  }
  // Trailing junk means encoder/decoder skew; also refused.
  EXPECT_THROW((void)recovery::decode_state(encoded + "x"), RecoveryError);
}

}  // namespace
