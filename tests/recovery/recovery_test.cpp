// recover(): checkpoint restore + journal-tail replay, with every failure
// mode loud — replay divergence, event-index gaps, orphaned END markers,
// mid-stream corruption — and every crash artifact (torn tail, truncated
// journal) absorbed exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "recovery/checkpoint.h"
#include "recovery/journal.h"
#include "recovery/recovery.h"
#include "recovery/harness.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::Orchestrator;
using recovery::RecoveredRun;
using recovery::RecoveryError;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

struct Baseline {
  std::string journal;
  std::uint64_t fingerprint = 0;
  std::uint64_t events = 0;
  std::string final_state;  // encode_state of the finished run
};

Baseline run_uninterrupted(std::uint64_t checkpoint_every,
                           std::uint64_t seed = 0x5EEDu) {
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, seed);
  Baseline base;
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = checkpoint_every;
  Orchestrator orch(cluster, trace.profile, recovery_options());
  recovery::WalManager wal(orch, base.journal, wopts);
  for (const auto& ev : trace.events) orch.handle(ev);
  base.fingerprint = orch.run_fingerprint();
  base.events = orch.events_handled();
  base.final_state = recovery::encode_state(orch.export_state());
  return base;
}

TEST(RecoveryTest, FullReplayWithoutCheckpointsRebuildsTheRun) {
  const Baseline base = run_uninterrupted(/*checkpoint_every=*/0);
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0x5EEDu);

  Orchestrator orch(cluster, trace.profile, recovery_options());
  const RecoveredRun rec = recovery::recover(orch, base.journal);
  EXPECT_FALSE(rec.used_checkpoint);
  EXPECT_FALSE(rec.torn_tail);
  EXPECT_EQ(rec.replayed_events, base.events);
  EXPECT_EQ(rec.next_event_index, base.events);
  EXPECT_EQ(orch.run_fingerprint(), base.fingerprint);
  EXPECT_EQ(recovery::encode_state(orch.export_state()), base.final_state);
}

TEST(RecoveryTest, CheckpointBoundsReplayToTheTail) {
  const Baseline base = run_uninterrupted(/*checkpoint_every=*/8);
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0x5EEDu);

  Orchestrator orch(cluster, trace.profile, recovery_options());
  const RecoveredRun rec = recovery::recover(orch, base.journal);
  EXPECT_TRUE(rec.used_checkpoint);
  // The newest checkpoint covers the largest multiple of 8 <= events.
  EXPECT_EQ(rec.checkpoint_event_index, (base.events / 8) * 8);
  EXPECT_EQ(rec.replayed_events, base.events - rec.checkpoint_event_index);
  EXPECT_EQ(orch.run_fingerprint(), base.fingerprint);
  EXPECT_EQ(recovery::encode_state(orch.export_state()), base.final_state);
}

TEST(RecoveryTest, TruncatedJournalRecoversThePrefix) {
  const Baseline base = run_uninterrupted(/*checkpoint_every=*/8);
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0x5EEDu);

  // Cut the journal at an arbitrary byte (mid-frame): the torn tail is
  // dropped and recovery lands on the last complete group before the cut.
  const std::string cut = base.journal.substr(0, base.journal.size() / 2);
  Orchestrator orch(cluster, trace.profile, recovery_options());
  const RecoveredRun rec = recovery::recover(orch, cut);
  EXPECT_LE(rec.valid_bytes, cut.size());
  EXPECT_LT(rec.next_event_index, base.events);
  EXPECT_EQ(orch.events_handled(), rec.next_event_index);

  // Resuming the feed from next_event_index reconverges on the baseline.
  std::string journal(cut.substr(0, rec.valid_bytes));
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = 8;
  recovery::WalManager wal(orch, journal, wopts, rec.next_seq);
  ASSERT_FALSE(feed(orch, trace.events, rec.next_event_index).has_value());
  EXPECT_EQ(orch.run_fingerprint(), base.fingerprint);
  EXPECT_EQ(recovery::encode_state(orch.export_state()), base.final_state);
}

TEST(RecoveryTest, MidStreamBitFlipIsALoudCanary) {
  const Baseline base = run_uninterrupted(/*checkpoint_every=*/8);
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0x5EEDu);

  // Flip one bit in the middle of the journal: recovery must refuse with
  // the byte offset, never silently truncate to the prefix.
  std::string corrupt = base.journal;
  corrupt[corrupt.size() / 2] ^= 0x10;
  Orchestrator orch(cluster, trace.profile, recovery_options());
  try {
    (void)recovery::recover(orch, corrupt);
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    EXPECT_TRUE(contains(e.what(), "byte offset")) << e.what();
  }
}

TEST(RecoveryTest, ReplayDivergenceIsRefused) {
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0x5EEDu);

  // Journal a run, then doctor one EVENT_BEGIN's embedded event (different
  // seed => different admission decision downstream).  Re-framing keeps the
  // CRCs valid, so only the fingerprint check can catch it.
  std::string journal;
  {
    Orchestrator orch(cluster, trace.profile, recovery_options());
    recovery::WalOptions wopts;
    wopts.checkpoint_every_events = 0;  // full replay must see the doctoring
    recovery::WalManager wal(orch, journal, wopts);
    for (const auto& ev : trace.events) orch.handle(ev);
  }
  const recovery::JournalParse parse = recovery::parse_journal(journal);
  std::string doctored;
  recovery::JournalWriter w(doctored);
  for (const recovery::JournalRecord& rec : parse.records) {
    switch (rec.type) {
      case recovery::RecordType::kEventBegin: {
        workload::TenantEvent ev = rec.event;
        if (ev.kind == workload::EventKind::kArrive) ev.seed ^= 0xBAD;
        w.event_begin(rec.event_index, ev);
        break;
      }
      case recovery::RecordType::kTxn:
        w.txn(rec.txn);
        break;
      case recovery::RecordType::kEventEnd:
        w.event_end(rec.event_index, rec.time, rec.fingerprint);
        break;
      case recovery::RecordType::kCheckpoint:
        w.checkpoint(rec.event_index, rec.fingerprint, rec.checkpoint);
        break;
    }
  }

  Orchestrator orch(cluster, trace.profile, recovery_options());
  try {
    (void)recovery::recover(orch, doctored);
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    EXPECT_TRUE(contains(e.what(), "replay diverged")) << e.what();
  }
}

TEST(RecoveryTest, OrphanedEndAndIndexGapAreRefused) {
  // END without BEGIN.
  {
    std::string journal;
    recovery::JournalWriter w(journal);
    w.event_end(0, 1.0, 7);
    Orchestrator orch(recovery_cluster(), workload::high_level_profile());
    try {
      (void)recovery::recover(orch, journal);
      FAIL() << "expected RecoveryError";
    } catch (const RecoveryError& e) {
      EXPECT_TRUE(contains(e.what(), "without its EVENT_BEGIN")) << e.what();
    }
  }
  // A group numbered past the recovered state (journal gap).
  {
    std::string journal;
    recovery::JournalWriter w(journal);
    workload::TenantEvent ev;
    ev.time = 1.0;
    ev.kind = workload::EventKind::kDepart;
    ev.tenant = 3;
    w.event_begin(5, ev);
    w.event_end(5, 1.0, 7);
    Orchestrator orch(recovery_cluster(), workload::high_level_profile());
    try {
      (void)recovery::recover(orch, journal);
      FAIL() << "expected RecoveryError";
    } catch (const RecoveryError& e) {
      EXPECT_TRUE(contains(e.what(), "does not follow the recovered state"))
          << e.what();
    }
  }
}

TEST(RecoveryTest, TrailingOpenGroupIsDroppedAsCrashArtifact) {
  const auto cluster = recovery_cluster();
  const auto trace = recovery_trace(cluster, 0x5EEDu);
  std::string journal;
  std::uint64_t fingerprint_before_last = 0;
  {
    Orchestrator orch(cluster, trace.profile, recovery_options());
    recovery::WalManager wal(orch, journal, {});
    for (std::size_t i = 0; i + 1 < trace.events.size(); ++i) {
      orch.handle(trace.events[i]);
    }
    fingerprint_before_last = orch.run_fingerprint();
    // Journal the last event's BEGIN by hand, no END: the crash window.
    recovery::JournalWriter tail(journal, wal.next_seq());
    tail.event_begin(orch.events_handled(), trace.events.back());
  }

  Orchestrator orch(cluster, trace.profile, recovery_options());
  const RecoveredRun rec = recovery::recover(orch, journal);
  EXPECT_EQ(rec.next_event_index, trace.events.size() - 1);
  EXPECT_EQ(orch.run_fingerprint(), fingerprint_before_last);
}

}  // namespace
