// Shared chaos-harness plumbing for the recovery tests: a seeded
// churn-plus-blast workload, a journaled orchestrator bundle whose
// lifetime models a process ("crashing" destroys the objects, only the
// journal bytes survive), and the resume-from-journal procedure the crash
// matrix drives at every injection site.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "orchestrator/orchestrator.h"
#include "recovery/checkpoint.h"
#include "recovery/journal.h"
#include "recovery/recovery.h"
#include "topology/topologies.h"
#include "workload/churn.h"
#include "workload/scenario.h"

namespace hmn::test {

/// A small racked fabric: correlated blast failures need switches to kill.
inline model::PhysicalCluster recovery_cluster() {
  return model::PhysicalCluster::build(
      topology::switch_tree(8, 4, 2),
      std::vector<model::HostCapacity>(8, {1000, 4096, 4096}),
      model::LinkProps{1000.0, 5.0});
}

/// Churn layered with correlated blast failures — every decision path the
/// journal must cover (admission, queueing, growth, departure + backfill,
/// blast healing, defrag) fires in ~a hundred events.
inline workload::ChurnTrace recovery_trace(
    const model::PhysicalCluster& cluster, std::uint64_t seed) {
  workload::ChurnOptions copts;
  copts.arrival_rate = 0.6;
  copts.horizon = 30.0;
  copts.mean_lifetime = 10.0;
  copts.min_guests = 2;
  copts.max_guests = 6;
  copts.density = 0.3;
  copts.grow_probability = 0.2;
  copts.profile = workload::high_level_profile();
  copts.profile.mem_mb = {512.0, 1280.0};
  workload::ChurnTrace trace = workload::generate_churn(copts, seed);

  workload::FailureOptions fopts;
  fopts.horizon = copts.horizon;
  fopts.host_mttf = 60.0;
  fopts.host_mttr = 4.0;
  fopts.blast_mttf = 18.0;
  fopts.blast_mttr = 4.0;
  workload::merge_events(
      trace, workload::generate_failures(fopts, cluster, seed ^ 0xb1a57));
  return trace;
}

/// Orchestrator options for the harness runs: a bounded queue with retries
/// and a preemption budget, so the queue-side txn kinds appear too.
inline orchestrator::OrchestratorOptions recovery_options() {
  orchestrator::OrchestratorOptions opts;
  opts.retry_max_attempts = 4;
  opts.retry_max_passovers = 3;
  opts.queue_policy = orchestrator::QueuePolicy::kSmallestFirst;
  return opts;
}

/// One "process": an orchestrator journaling into a caller-owned buffer.
/// Destroying the bundle is the crash — only the journal bytes survive it.
struct JournaledRun {
  std::unique_ptr<orchestrator::Orchestrator> orch;
  std::unique_ptr<recovery::WalManager> wal;

  JournaledRun(const model::PhysicalCluster& cluster,
               const workload::GuestProfile& profile,
               const orchestrator::OrchestratorOptions& opts,
               std::string& journal, recovery::WalOptions wal_opts,
               std::uint64_t start_seq = 0)
      : orch(std::make_unique<orchestrator::Orchestrator>(cluster, profile,
                                                          opts)),
        wal(std::make_unique<recovery::WalManager>(*orch, journal, wal_opts,
                                                   start_seq)) {}

  ~JournaledRun() { crash(); }

  /// Process death: the WAL detaches first (it observes the orchestrator),
  /// then the orchestrator's in-memory state is discarded.
  void crash() {
    wal.reset();
    orch.reset();
  }
};

/// Feeds events [first, end) into a journaled run.  Returns the index of
/// the event whose handling threw CrashError, or nullopt when the feed
/// completed.  Any other exception propagates.
inline std::optional<std::size_t> feed(
    orchestrator::Orchestrator& orch,
    const std::vector<workload::TenantEvent>& events, std::size_t first) {
  for (std::size_t i = first; i < events.size(); ++i) {
    try {
      orch.handle(events[i]);
    } catch (const recovery::CrashError&) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace hmn::test
