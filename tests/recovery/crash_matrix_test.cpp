// The crash-point matrix: kill the orchestrator at EVERY journal append
// site of a seeded churn-plus-blast workload — torn partial frame
// included — recover from the journal bytes alone, resume the feed, and
// prove the finished run is byte-identical to the uninterrupted one.
// This is the E18 invariant in unit-test form; bench_recovery measures
// the same sweep's overhead and recovery-time bounds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "recovery/checkpoint.h"
#include "recovery/journal.h"
#include "recovery/recovery.h"
#include "workload/crashes.h"
#include "recovery/harness.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::Orchestrator;
using recovery::RecoveredRun;

struct Reference {
  model::PhysicalCluster cluster;
  workload::ChurnTrace trace;
  std::uint64_t fingerprint = 0;
  std::string final_state;
  std::uint64_t total_records = 0;
};

Reference make_reference(std::uint64_t seed,
                         std::uint64_t checkpoint_every) {
  Reference ref;
  ref.cluster = recovery_cluster();
  ref.trace = recovery_trace(ref.cluster, seed);
  std::string journal;
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = checkpoint_every;
  Orchestrator orch(ref.cluster, ref.trace.profile, recovery_options());
  recovery::WalManager wal(orch, journal, wopts);
  for (const auto& ev : ref.trace.events) orch.handle(ev);
  ref.fingerprint = orch.run_fingerprint();
  ref.final_state = recovery::encode_state(orch.export_state());
  ref.total_records = wal.next_seq();
  return ref;
}

/// Crash at `point`, recover from the journal bytes, resume the feed from
/// RecoveredRun::next_event_index, and return the finished orchestrator's
/// (fingerprint, state) for comparison against the reference.
struct CrashRunResult {
  std::uint64_t fingerprint = 0;
  std::string final_state;
  bool crashed = false;
  bool torn_tail = false;
  bool used_checkpoint = false;
};

CrashRunResult run_with_crash(const Reference& ref,
                              const workload::CrashPoint& point,
                              std::uint64_t checkpoint_every) {
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = checkpoint_every;
  std::string journal;
  CrashRunResult out;
  {
    JournaledRun doomed(ref.cluster, ref.trace.profile, recovery_options(),
                        journal, wopts);
    doomed.wal->arm_crash(point);
    const auto died_at = feed(*doomed.orch, ref.trace.events, 0);
    out.crashed = died_at.has_value();
    // The bundle goes out of scope here: process death.  Only `journal`
    // survives.
  }
  if (!out.crashed) {
    // The armed seq was never reached (it indexed a record the run does
    // not produce); the uninterrupted result stands.
    const recovery::JournalParse parse = recovery::parse_journal(journal);
    EXPECT_FALSE(parse.torn_tail);
  }

  // Recovery: a fresh "process" with the same static configuration.
  Orchestrator orch(ref.cluster, ref.trace.profile, recovery_options());
  const RecoveredRun rec = recovery::recover(orch, journal);
  out.torn_tail = rec.torn_tail;
  out.used_checkpoint = rec.used_checkpoint;
  journal.resize(rec.valid_bytes);

  // Resume feeding from the *recovered* index, not a harness-side counter:
  // a crash during a checkpoint append leaves a fully journaled group for
  // an event the feeder never got credit for.
  recovery::WalManager wal(orch, journal, wopts, rec.next_seq);
  EXPECT_FALSE(feed(orch, ref.trace.events, rec.next_event_index)
                   .has_value());
  out.fingerprint = orch.run_fingerprint();
  out.final_state = recovery::encode_state(orch.export_state());
  return out;
}

TEST(CrashMatrixTest, EveryInjectionSiteRecoversByteIdentical) {
  const std::uint64_t kCheckpointEvery = 8;
  const Reference ref = make_reference(0xE18C0DEu, kCheckpointEvery);
  ASSERT_GT(ref.trace.events.size(), 40u);
  ASSERT_GT(ref.total_records, ref.trace.events.size() * 2);

  std::size_t torn = 0, checkpointed = 0;
  for (std::uint64_t seq = 0; seq < ref.total_records; ++seq) {
    workload::CrashPoint point;
    point.record_seq = seq;
    // Deterministic torn-byte variety across the sweep: full torn range
    // gets hit because the modulus differs per frame.
    point.torn_seed = seq * 2654435761ull + 0x9E3779B9ull;
    const CrashRunResult res =
        run_with_crash(ref, point, kCheckpointEvery);
    EXPECT_TRUE(res.crashed) << "seq " << seq << " never fired";
    EXPECT_EQ(res.fingerprint, ref.fingerprint) << "crash at seq " << seq;
    EXPECT_EQ(res.final_state, ref.final_state) << "crash at seq " << seq;
    torn += res.torn_tail;
    checkpointed += res.used_checkpoint;
  }
  // The sweep must actually exercise both torn tails and checkpointed
  // recoveries, or the matrix proves less than it claims.
  EXPECT_GT(torn, 0u);
  EXPECT_GT(checkpointed, 0u);
}

TEST(CrashMatrixTest, ScheduledCrashPointsAreDeterministicAndCovered) {
  // The chaos driver's schedule generator: deterministic in all arguments,
  // sorted by sequence, bounded by max_seq.
  const auto a = workload::generate_crash_schedule(7, 32, 1000);
  const auto b = workload::generate_crash_schedule(7, 32, 1000);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(a[i].record_seq, 1000u);
    if (i > 0) {
      EXPECT_GE(a[i].record_seq, a[i - 1].record_seq);
    }
  }
  EXPECT_NE(workload::generate_crash_schedule(8, 32, 1000), a);
  EXPECT_TRUE(workload::generate_crash_schedule(7, 0, 1000).empty());
  EXPECT_TRUE(workload::generate_crash_schedule(7, 32, 0).empty());
}

TEST(CrashMatrixTest, DoubleCrashSurvivesRepeatedRecovery) {
  // Crash, recover, crash again while re-feeding, recover again: the
  // journal absorbs any number of deaths.
  const std::uint64_t kCheckpointEvery = 8;
  const Reference ref = make_reference(0xD0D0u, kCheckpointEvery);
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = kCheckpointEvery;

  std::string journal;
  {
    JournaledRun first(ref.cluster, ref.trace.profile, recovery_options(),
                       journal, wopts);
    first.wal->arm_crash({ref.total_records / 3, 11});
    ASSERT_TRUE(feed(*first.orch, ref.trace.events, 0).has_value());
  }
  std::uint64_t second_crash_events = 0;
  {
    Orchestrator orch(ref.cluster, ref.trace.profile, recovery_options());
    const RecoveredRun rec = recovery::recover(orch, journal);
    journal.resize(rec.valid_bytes);
    recovery::WalManager wal(orch, journal, wopts, rec.next_seq);
    wal.arm_crash({rec.next_seq + (ref.total_records - rec.next_seq) / 2,
                   /*torn_seed=*/17});
    ASSERT_TRUE(
        feed(orch, ref.trace.events, rec.next_event_index).has_value());
    second_crash_events = orch.events_handled();
  }
  {
    Orchestrator orch(ref.cluster, ref.trace.profile, recovery_options());
    const RecoveredRun rec = recovery::recover(orch, journal);
    journal.resize(rec.valid_bytes);
    EXPECT_GT(second_crash_events, 0u);
    recovery::WalManager wal(orch, journal, wopts, rec.next_seq);
    ASSERT_FALSE(
        feed(orch, ref.trace.events, rec.next_event_index).has_value());
    EXPECT_EQ(orch.run_fingerprint(), ref.fingerprint);
    EXPECT_EQ(recovery::encode_state(orch.export_state()), ref.final_state);
  }
}

}  // namespace
