// Tests for fabric partitioning (topology::partition_cluster): shard
// connectivity, coverage, CPU balance, remap-table consistency, edge
// accounting, determinism, and the degenerate k values.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "model/physical_cluster.h"
#include "topology/partition.h"
#include "topology/topologies.h"

namespace {

using namespace hmn;
using topology::ClusterPartition;
using topology::ClusterShard;
using topology::partition_cluster;

model::PhysicalCluster uniform_cluster(topology::Topology topo,
                                       double proc_mips = 1000.0) {
  const std::size_t hosts = topo.host_count();
  return model::PhysicalCluster::build(
      std::move(topo),
      std::vector<model::HostCapacity>(hosts, {proc_mips, 4096, 4096}),
      model::LinkProps{1000.0, 5.0});
}

/// Structural invariants every partition must satisfy, regardless of the
/// fabric or k: full node coverage, consistent remap tables in both
/// directions, connected induced shards, and exact edge accounting
/// (every parent edge is either inside exactly one shard or cut).
void check_invariants(const model::PhysicalCluster& parent,
                      const ClusterPartition& part) {
  const graph::Graph& g = parent.graph();
  ASSERT_EQ(part.shard_of_node.size(), g.node_count());
  ASSERT_EQ(part.local_node.size(), g.node_count());
  ASSERT_GE(part.shard_count(), 1u);

  // Node coverage and round-trip remap.
  std::size_t nodes_total = 0;
  for (std::size_t s = 0; s < part.shard_count(); ++s) {
    const ClusterShard& shard = part.shards[s];
    ASSERT_EQ(shard.to_parent_node.size(), shard.cluster.node_count());
    nodes_total += shard.cluster.node_count();
    for (std::size_t l = 0; l < shard.to_parent_node.size(); ++l) {
      const NodeId local{static_cast<unsigned>(l)};
      const NodeId parent_id = shard.parent_node(local);
      EXPECT_EQ(part.shard_of_node[parent_id.index()], s);
      EXPECT_EQ(part.local_node[parent_id.index()], local);
      // Roles and capacities copied verbatim.
      EXPECT_EQ(shard.cluster.is_host(local), parent.is_host(parent_id));
      EXPECT_EQ(shard.cluster.capacity(local).proc_mips,
                parent.capacity(parent_id).proc_mips);
    }
    // Remap table strictly increasing => local order mirrors parent order.
    for (std::size_t l = 1; l < shard.to_parent_node.size(); ++l) {
      EXPECT_LT(shard.to_parent_node[l - 1].value(),
                shard.to_parent_node[l].value());
    }
    EXPECT_TRUE(shard.cluster.graph().connected());
  }
  EXPECT_EQ(nodes_total, g.node_count());

  // Edge accounting: shard-internal edges + cut edges == parent edges, and
  // each internal edge joins the same endpoints as its parent edge.
  std::size_t edges_total = part.cut_edges.size();
  for (const ClusterShard& shard : part.shards) {
    ASSERT_EQ(shard.to_parent_edge.size(), shard.cluster.link_count());
    edges_total += shard.cluster.link_count();
    for (std::size_t e = 0; e < shard.cluster.link_count(); ++e) {
      const EdgeId local{static_cast<unsigned>(e)};
      const auto lep = shard.cluster.graph().endpoints(local);
      const auto pep = g.endpoints(shard.parent_edge(local));
      EXPECT_EQ(shard.parent_node(lep.a), pep.a);
      EXPECT_EQ(shard.parent_node(lep.b), pep.b);
      EXPECT_EQ(shard.cluster.link(local).bandwidth_mbps,
                parent.link(shard.parent_edge(local)).bandwidth_mbps);
    }
  }
  EXPECT_EQ(edges_total, g.edge_count());
  for (const EdgeId e : part.cut_edges) {
    const auto ep = g.endpoints(e);
    EXPECT_NE(part.shard_of_node[ep.a.index()],
              part.shard_of_node[ep.b.index()]);
  }
}

TEST(PartitionTest, HostOnlyTorusSplitsBalanced) {
  const auto parent = uniform_cluster(topology::torus_2d(8, 5));
  const ClusterPartition part = partition_cluster(parent, 4);
  check_invariants(parent, part);
  EXPECT_EQ(part.shard_count(), 4u);

  std::size_t hosts_total = 0;
  for (const ClusterShard& shard : part.shards) {
    hosts_total += shard.cluster.host_count();
    EXPECT_GT(shard.cluster.host_count(), 0u);
    // Uniform hosts: every shard within 2x of the perfect 10-host share.
    EXPECT_GE(shard.cluster.host_count(), 5u);
    EXPECT_LE(shard.cluster.host_count(), 20u);
    EXPECT_DOUBLE_EQ(
        shard.total_proc_mips,
        1000.0 * static_cast<double>(shard.cluster.host_count()));
  }
  EXPECT_EQ(hosts_total, 40u);
  EXPECT_FALSE(part.cut_edges.empty());
}

TEST(PartitionTest, SwitchTreeCutsAlongRackBoundaries) {
  // 64 hosts under 8-wide leaf switches: rack units are indivisible, so
  // every leaf switch must land in the same shard as all its hosts.
  const auto parent = uniform_cluster(topology::switch_tree(64, 8, 4));
  const ClusterPartition part = partition_cluster(parent, 4);
  check_invariants(parent, part);
  EXPECT_GE(part.shard_count(), 2u);
  EXPECT_LE(part.shard_count(), 4u);

  const graph::Graph& g = parent.graph();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const NodeId node{static_cast<unsigned>(i)};
    if (!parent.is_host(node)) continue;
    for (const graph::Adjacency& adj : g.neighbors(node)) {
      if (parent.is_host(adj.neighbor)) continue;
      // A host and its only uplink switch are never separated.
      EXPECT_EQ(part.shard_of_node[i],
                part.shard_of_node[adj.neighbor.index()]);
    }
  }
  // Every shard can run guests.
  for (const ClusterShard& shard : part.shards) {
    EXPECT_GT(shard.cluster.host_count(), 0u);
  }
}

TEST(PartitionTest, KOneIsIdentityShard) {
  const auto parent = uniform_cluster(topology::switch_tree(32, 8, 4));
  const ClusterPartition part = partition_cluster(parent, 1);
  check_invariants(parent, part);
  ASSERT_EQ(part.shard_count(), 1u);
  EXPECT_EQ(part.shards[0].cluster.node_count(), parent.node_count());
  EXPECT_EQ(part.shards[0].cluster.link_count(), parent.link_count());
  EXPECT_EQ(part.shards[0].cluster.host_count(), parent.host_count());
  EXPECT_TRUE(part.cut_edges.empty());
}

TEST(PartitionTest, KBeyondUnitCountIsClamped) {
  // A star has exactly one rack unit (the switch owns every host): any k
  // collapses to a single shard.
  const auto star = uniform_cluster(topology::star(6));
  const ClusterPartition star_part = partition_cluster(star, 16);
  check_invariants(star, star_part);
  EXPECT_EQ(star_part.shard_count(), 1u);

  // A host-only ring of 6 has six units; k=100 clamps to at most 6 shards.
  const auto ring = uniform_cluster(topology::ring(6));
  const ClusterPartition ring_part = partition_cluster(ring, 100);
  check_invariants(ring, ring_part);
  EXPECT_LE(ring_part.shard_count(), 6u);
  EXPECT_GE(ring_part.shard_count(), 2u);
}

TEST(PartitionTest, HeterogeneousHostsBalanceByCpuNotCount) {
  // 16 hosts on a line: the first four are 8x beefier than the rest.  A
  // CPU-balanced cut puts far fewer of the beefy hosts in their shard.
  std::vector<model::HostCapacity> caps;
  for (std::size_t i = 0; i < 16; ++i) {
    caps.push_back({i < 4 ? 8000.0 : 1000.0, 4096, 4096});
  }
  const auto parent = model::PhysicalCluster::build(
      topology::line(16), std::move(caps), model::LinkProps{1000.0, 5.0});
  const ClusterPartition part = partition_cluster(parent, 2);
  check_invariants(parent, part);
  ASSERT_EQ(part.shard_count(), 2u);
  const double total = 4 * 8000.0 + 12 * 1000.0;
  for (const ClusterShard& shard : part.shards) {
    // Within one beefy host of the even split.
    EXPECT_NEAR(shard.total_proc_mips, total / 2.0, 8000.0);
  }
  EXPECT_NE(part.shards[0].cluster.host_count(),
            part.shards[1].cluster.host_count());
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  const auto parent = uniform_cluster(topology::switch_tree(96, 8, 4));
  const ClusterPartition a = partition_cluster(parent, 6);
  const ClusterPartition b = partition_cluster(parent, 6);
  ASSERT_EQ(a.shard_count(), b.shard_count());
  EXPECT_EQ(a.shard_of_node, b.shard_of_node);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
  for (std::size_t s = 0; s < a.shard_count(); ++s) {
    EXPECT_EQ(a.shards[s].to_parent_node, b.shards[s].to_parent_node);
    EXPECT_EQ(a.shards[s].to_parent_edge, b.shards[s].to_parent_edge);
  }
}

}  // namespace
