// Tests for the shared contraction bookkeeping (topology::Contraction):
// partition-of-nodes structure, edge accounting, resource conservation of
// the materialized coarse cluster, heavy-edge matching progress, and the
// induced-subcluster remap tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "model/physical_cluster.h"
#include "topology/contraction.h"
#include "topology/topologies.h"

namespace {

using namespace hmn;
using topology::Contraction;

model::PhysicalCluster uniform_cluster(topology::Topology topo,
                                       double proc_mips = 1000.0) {
  const std::size_t hosts = topo.host_count();
  return model::PhysicalCluster::build(
      std::move(topo),
      std::vector<model::HostCapacity>(hosts, {proc_mips, 4096, 4096}),
      model::LinkProps{1000.0, 5.0});
}

/// Structural invariants every contraction must satisfy: members partition
/// the node set, group_of_node round-trips, every fine edge is internal or
/// belongs to exactly one coarse edge, and adjacency mirrors coarse_edges.
void check_invariants(const model::PhysicalCluster& fine,
                      const Contraction& c) {
  const graph::Graph& g = fine.graph();
  ASSERT_EQ(c.group_of_node.size(), g.node_count());
  ASSERT_EQ(c.members.size(), c.group_count());
  ASSERT_EQ(c.group_proc_mips.size(), c.group_count());
  ASSERT_EQ(c.group_hosts.size(), c.group_count());
  ASSERT_EQ(c.adjacency.size(), c.group_count());
  ASSERT_EQ(c.coarse_edge_of.size(), g.edge_count());

  // members[] is a partition of the node set, ascending within each group.
  std::size_t covered = 0;
  for (std::size_t grp = 0; grp < c.group_count(); ++grp) {
    ASSERT_FALSE(c.members[grp].empty());
    covered += c.members[grp].size();
    std::size_t hosts = 0;
    double mips = 0.0;
    for (std::size_t i = 0; i < c.members[grp].size(); ++i) {
      const NodeId n = c.members[grp][i];
      EXPECT_EQ(c.group_of_node[n.index()], grp);
      if (i > 0) {
        EXPECT_LT(c.members[grp][i - 1].value(), n.value());
      }
      if (fine.is_host(n)) {
        ++hosts;
        mips += fine.capacity(n).proc_mips;
      }
    }
    EXPECT_EQ(c.group_hosts[grp], hosts);
    EXPECT_DOUBLE_EQ(c.group_proc_mips[grp], mips);
  }
  EXPECT_EQ(covered, g.node_count());

  // Edge accounting: internal edges map to npos, crossing edges to the
  // coarse edge joining their endpoint groups, listed among its fine_edges.
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const EdgeId edge{static_cast<unsigned>(e)};
    const auto ep = g.endpoints(edge);
    const std::size_t ga = c.group_of_node[ep.a.index()];
    const std::size_t gb = c.group_of_node[ep.b.index()];
    const std::size_t ce = c.coarse_edge_of[e];
    if (ga == gb) {
      EXPECT_EQ(ce, Contraction::npos);
      continue;
    }
    ASSERT_LT(ce, c.coarse_edges.size());
    const auto& coarse = c.coarse_edges[ce];
    EXPECT_EQ(std::min(ga, gb), coarse.a);
    EXPECT_EQ(std::max(ga, gb), coarse.b);
    EXPECT_NE(std::find(coarse.fine_edges.begin(), coarse.fine_edges.end(),
                        edge),
              coarse.fine_edges.end());
  }

  // Coarse edges are (a, b)-ordered with a < b, and adjacency mirrors them.
  for (std::size_t i = 0; i < c.coarse_edges.size(); ++i) {
    const auto& ce = c.coarse_edges[i];
    EXPECT_LT(ce.a, ce.b);
    if (i > 0) {
      const auto& prev = c.coarse_edges[i - 1];
      EXPECT_TRUE(prev.a < ce.a || (prev.a == ce.a && prev.b < ce.b));
    }
    EXPECT_NE(std::find(c.adjacency[ce.a].begin(), c.adjacency[ce.a].end(),
                        ce.b),
              c.adjacency[ce.a].end());
    EXPECT_NE(std::find(c.adjacency[ce.b].begin(), c.adjacency[ce.b].end(),
                        ce.a),
              c.adjacency[ce.b].end());
  }
}

TEST(ContractionTest, RackUnitsGroupSwitchWithItsHosts) {
  const auto fine = uniform_cluster(topology::switch_tree(64, 8, 4));
  const Contraction c = topology::contract_rack_units(fine);
  check_invariants(fine, c);
  EXPECT_LT(c.group_count(), fine.node_count());

  // Every host shares a group with its (unique) uplink switch.
  const graph::Graph& g = fine.graph();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const NodeId node{static_cast<unsigned>(i)};
    if (!fine.is_host(node)) continue;
    for (const graph::Adjacency& adj : g.neighbors(node)) {
      if (fine.is_host(adj.neighbor)) continue;
      EXPECT_EQ(c.group_of_node[i], c.group_of_node[adj.neighbor.index()]);
    }
  }
}

TEST(ContractionTest, RackUnitsOnHostOnlyFabricAreSingletons) {
  const auto fine = uniform_cluster(topology::torus_2d(4, 4));
  const Contraction c = topology::contract_rack_units(fine);
  check_invariants(fine, c);
  // No switches: every host is its own unit, nothing contracts.
  EXPECT_EQ(c.group_count(), fine.node_count());
}

TEST(ContractionTest, CoarseClusterConservesResources) {
  const auto fine = uniform_cluster(topology::switch_tree(48, 8, 4), 750.0);
  const Contraction c = topology::contract_rack_units(fine);
  const model::PhysicalCluster coarse = topology::coarse_cluster(fine, c);

  ASSERT_EQ(coarse.node_count(), c.group_count());
  ASSERT_EQ(coarse.link_count(), c.coarse_edges.size());

  // CPU/mem conservation: coarse aggregate == fine aggregate.
  double fine_mips = 0.0, fine_mem = 0.0;
  for (const NodeId h : fine.hosts()) {
    fine_mips += fine.capacity(h).proc_mips;
    fine_mem += fine.capacity(h).mem_mb;
  }
  double coarse_mips = 0.0, coarse_mem = 0.0;
  for (const NodeId h : coarse.hosts()) {
    coarse_mips += coarse.capacity(h).proc_mips;
    coarse_mem += coarse.capacity(h).mem_mb;
  }
  EXPECT_DOUBLE_EQ(coarse_mips, fine_mips);
  EXPECT_DOUBLE_EQ(coarse_mem, fine_mem);

  // A group is a host-role coarse node iff it contains a host.
  for (std::size_t grp = 0; grp < c.group_count(); ++grp) {
    const NodeId n{static_cast<unsigned>(grp)};
    EXPECT_EQ(coarse.is_host(n), c.group_hosts[grp] > 0);
  }

  // Trunk links: bandwidth summed, latency minimized over crossing edges.
  for (std::size_t e = 0; e < coarse.link_count(); ++e) {
    const EdgeId ce{static_cast<unsigned>(e)};
    double bw = 0.0;
    double lat = std::numeric_limits<double>::infinity();
    for (const EdgeId fe : c.coarse_edges[e].fine_edges) {
      bw += fine.link(fe).bandwidth_mbps;
      lat = std::min(lat, fine.link(fe).latency_ms);
    }
    EXPECT_DOUBLE_EQ(coarse.link(ce).bandwidth_mbps, bw);
    EXPECT_DOUBLE_EQ(coarse.link(ce).latency_ms, lat);
  }

  // Connectivity is preserved through contraction.
  EXPECT_TRUE(fine.graph().connected());
  EXPECT_TRUE(coarse.graph().connected());
}

TEST(ContractionTest, HeavyMatchingShrinksAndStaysConnected) {
  const auto fine = uniform_cluster(topology::torus_2d(6, 6));
  const Contraction c = topology::contract_heavy_matching(fine);
  check_invariants(fine, c);
  // A connected graph with >= 2 nodes always has at least one match.
  EXPECT_LT(c.group_count(), fine.node_count());
  // Matching pairs at most two nodes per group.
  for (const auto& members : c.members) {
    EXPECT_LE(members.size(), 2u);
  }
  const model::PhysicalCluster coarse = topology::coarse_cluster(fine, c);
  EXPECT_TRUE(coarse.graph().connected());
}

TEST(ContractionTest, HeavyMatchingPrefersHeavierEdges) {
  // A 4-ring where edge 3-0 carries 10x bandwidth: node 0 scans first and
  // must pair with neighbor 3 (heavy) over neighbor 1, leaving 1 and 2 to
  // pair with each other.
  auto topo = topology::ring(4);
  std::vector<model::LinkProps> links(4, {100.0, 1.0});
  links[3].bandwidth_mbps = 1000.0;  // the 3-0 edge
  const auto fine = model::PhysicalCluster::build(
      std::move(topo),
      std::vector<model::HostCapacity>(4, {1000.0, 4096, 4096}),
      std::move(links));
  const auto heavy_ep = fine.graph().endpoints(EdgeId{3});
  ASSERT_TRUE((heavy_ep.a == NodeId{3} && heavy_ep.b == NodeId{0}) ||
              (heavy_ep.a == NodeId{0} && heavy_ep.b == NodeId{3}));
  const Contraction c = topology::contract_heavy_matching(fine);
  check_invariants(fine, c);
  ASSERT_EQ(c.group_count(), 2u);
  EXPECT_EQ(c.group_of_node[0], c.group_of_node[3]);
  EXPECT_EQ(c.group_of_node[1], c.group_of_node[2]);
  EXPECT_NE(c.group_of_node[0], c.group_of_node[1]);
}

TEST(ContractionTest, InducedSubclusterRemapsFaithfully) {
  const auto parent = uniform_cluster(topology::switch_tree(16, 4, 2));
  // Take one rack unit's nodes (a switch plus its hosts).
  const Contraction c = topology::contract_rack_units(parent);
  const std::vector<NodeId>& nodes = c.members[0];
  const topology::SubCluster sub = topology::induced_subcluster(parent, nodes);

  ASSERT_EQ(sub.cluster.node_count(), nodes.size());
  ASSERT_EQ(sub.to_parent_node.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId local{static_cast<unsigned>(i)};
    EXPECT_EQ(sub.to_parent_node[i], nodes[i]);
    EXPECT_EQ(sub.cluster.is_host(local), parent.is_host(nodes[i]));
    EXPECT_DOUBLE_EQ(sub.cluster.capacity(local).proc_mips,
                     parent.capacity(nodes[i]).proc_mips);
  }
  // Edge remap: every local edge joins the parent edge's endpoints.
  ASSERT_EQ(sub.to_parent_edge.size(), sub.cluster.link_count());
  for (std::size_t e = 0; e < sub.cluster.link_count(); ++e) {
    const EdgeId local{static_cast<unsigned>(e)};
    const auto lep = sub.cluster.graph().endpoints(local);
    const auto pep = parent.graph().endpoints(sub.to_parent_edge[e]);
    EXPECT_EQ(sub.to_parent_node[lep.a.index()], pep.a);
    EXPECT_EQ(sub.to_parent_node[lep.b.index()], pep.b);
    EXPECT_DOUBLE_EQ(sub.cluster.link(local).bandwidth_mbps,
                     parent.link(sub.to_parent_edge[e]).bandwidth_mbps);
  }
  // A rack unit's induced subcluster is connected (star around the switch).
  EXPECT_TRUE(sub.cluster.graph().connected());
}

TEST(ContractionTest, DeterministicAcrossCalls) {
  const auto fine = uniform_cluster(topology::switch_tree(96, 8, 4));
  const Contraction a = topology::contract_rack_units(fine);
  const Contraction b = topology::contract_rack_units(fine);
  EXPECT_EQ(a.group_of_node, b.group_of_node);
  EXPECT_EQ(a.coarse_edge_of, b.coarse_edge_of);
  const Contraction ha = topology::contract_heavy_matching(fine);
  const Contraction hb = topology::contract_heavy_matching(fine);
  EXPECT_EQ(ha.group_of_node, hb.group_of_node);
  EXPECT_EQ(ha.coarse_edge_of, hb.coarse_edge_of);
}

}  // namespace
