// Tests for the topology builders.
#include <gtest/gtest.h>

#include <set>

#include "graph/dijkstra.h"
#include "topology/topologies.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using topology::NodeRole;
using topology::Topology;

NodeId n(unsigned v) { return NodeId{v}; }

void expect_no_duplicate_edges(const graph::Graph& g) {
  std::set<std::pair<unsigned, unsigned>> seen;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    EXPECT_NE(ep.a, ep.b) << "self loop at edge " << e;
    const std::pair<unsigned, unsigned> key{std::min(ep.a.value(), ep.b.value()),
                                            std::max(ep.a.value(), ep.b.value())};
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate edge " << key.first << "-" << key.second;
  }
}

TEST(Torus, PaperShape8x5) {
  const Topology t = topology::torus_2d(8, 5);
  EXPECT_EQ(t.host_count(), 40u);
  EXPECT_EQ(t.switch_count(), 0u);
  // 2-D torus: 2 * rows * cols edges when both dims > 2.
  EXPECT_EQ(t.graph.edge_count(), 80u);
  EXPECT_TRUE(t.graph.connected());
  expect_no_duplicate_edges(t.graph);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(t.graph.degree(n(static_cast<unsigned>(i))), 4u);
  }
}

TEST(Torus, DegenerateDimensions) {
  const Topology line_like = topology::torus_2d(1, 5);
  EXPECT_TRUE(line_like.graph.connected());
  expect_no_duplicate_edges(line_like.graph);

  const Topology two_by_two = topology::torus_2d(2, 2);
  EXPECT_TRUE(two_by_two.graph.connected());
  expect_no_duplicate_edges(two_by_two.graph);
  EXPECT_EQ(two_by_two.graph.edge_count(), 4u);

  const Topology single = topology::torus_2d(1, 1);
  EXPECT_EQ(single.graph.node_count(), 1u);
  EXPECT_EQ(single.graph.edge_count(), 0u);
}

TEST(Torus, DiameterOfPaperCluster) {
  const Topology t = topology::torus_2d(8, 5);
  auto unit = [](EdgeId) { return 1.0; };
  double diameter = 0.0;
  for (unsigned v = 0; v < 40; ++v) {
    const auto sp = graph::dijkstra(t.graph, n(v), unit);
    for (unsigned u = 0; u < 40; ++u) diameter = std::max(diameter, sp.dist[u]);
  }
  EXPECT_DOUBLE_EQ(diameter, 6.0);  // 8/2 + 5/2 (integer halves) = 4 + 2
}

TEST(Switched, SingleSwitchWhenHostsFit) {
  const Topology t = topology::switched(40, 64);
  EXPECT_EQ(t.host_count(), 40u);
  EXPECT_EQ(t.switch_count(), 1u);
  EXPECT_EQ(t.graph.edge_count(), 40u);
  EXPECT_TRUE(t.graph.connected());
  // Every host has degree 1 (its uplink).
  for (const NodeId h : t.host_nodes()) EXPECT_EQ(t.graph.degree(h), 1u);
}

TEST(Switched, CascadesWhenPortsExhausted) {
  const Topology t = topology::switched(100, 64);
  EXPECT_EQ(t.host_count(), 100u);
  EXPECT_EQ(t.switch_count(), 2u);
  EXPECT_TRUE(t.graph.connected());
  // Switch port usage must respect the port budget.
  for (std::size_t i = 0; i < t.role.size(); ++i) {
    if (t.role[i] == NodeRole::kSwitch) {
      EXPECT_LE(t.graph.degree(n(static_cast<unsigned>(i))), 64u);
    }
  }
}

TEST(Switched, LongCascade) {
  const Topology t = topology::switched(20, 3);  // tiny switches: many hops
  EXPECT_EQ(t.host_count(), 20u);
  EXPECT_GE(t.switch_count(), 10u);
  EXPECT_TRUE(t.graph.connected());
  for (std::size_t i = 0; i < t.role.size(); ++i) {
    if (t.role[i] == NodeRole::kSwitch) {
      EXPECT_LE(t.graph.degree(n(static_cast<unsigned>(i))), 3u);
    }
  }
}

TEST(Switched, PathsGoThroughSwitches) {
  const Topology t = topology::switched(40, 64);
  auto unit = [](EdgeId) { return 1.0; };
  const auto sp = graph::dijkstra(t.graph, n(0), unit);
  for (unsigned v = 1; v < 40; ++v) EXPECT_DOUBLE_EQ(sp.dist[v], 2.0);
}

TEST(Ring, ShapeAndDegrees) {
  const Topology t = topology::ring(6);
  EXPECT_EQ(t.graph.edge_count(), 6u);
  EXPECT_TRUE(t.graph.connected());
  for (unsigned i = 0; i < 6; ++i) EXPECT_EQ(t.graph.degree(n(i)), 2u);
  expect_no_duplicate_edges(t.graph);
}

TEST(Ring, TwoNodesSingleEdge) {
  const Topology t = topology::ring(2);
  EXPECT_EQ(t.graph.edge_count(), 1u);
  expect_no_duplicate_edges(t.graph);
}

TEST(Line, Shape) {
  const Topology t = topology::line(5);
  EXPECT_EQ(t.graph.edge_count(), 4u);
  EXPECT_TRUE(t.graph.connected());
  EXPECT_EQ(t.graph.degree(n(0)), 1u);
  EXPECT_EQ(t.graph.degree(n(2)), 2u);
}

TEST(Star, HubIsSwitch) {
  const Topology t = topology::star(7);
  EXPECT_EQ(t.host_count(), 7u);
  EXPECT_EQ(t.switch_count(), 1u);
  EXPECT_EQ(t.graph.degree(n(7)), 7u);  // the hub
  EXPECT_TRUE(t.graph.connected());
}

TEST(FullMesh, Complete) {
  const Topology t = topology::full_mesh(5);
  EXPECT_EQ(t.graph.edge_count(), 10u);
  EXPECT_DOUBLE_EQ(t.graph.density(), 1.0);
}

TEST(Hypercube, ShapeAndDegrees) {
  const Topology t = topology::hypercube(3);
  EXPECT_EQ(t.graph.node_count(), 8u);
  EXPECT_EQ(t.graph.edge_count(), 12u);  // d * 2^(d-1)
  EXPECT_TRUE(t.graph.connected());
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(t.graph.degree(n(i)), 3u);
  expect_no_duplicate_edges(t.graph);
}

TEST(Hypercube, DimensionZeroIsSingleNode) {
  const Topology t = topology::hypercube(0);
  EXPECT_EQ(t.graph.node_count(), 1u);
  EXPECT_EQ(t.graph.edge_count(), 0u);
}

TEST(FatTree, K4Shape) {
  const Topology t = topology::fat_tree(4);
  EXPECT_EQ(t.host_count(), 16u);   // k^3/4
  EXPECT_EQ(t.switch_count(), 20u); // 4 core + 4 pods * 4 switches
  EXPECT_TRUE(t.graph.connected());
  // Hosts have degree 1; every switch has degree k.
  for (std::size_t i = 0; i < t.role.size(); ++i) {
    const auto node = n(static_cast<unsigned>(i));
    if (t.role[i] == NodeRole::kHost) {
      EXPECT_EQ(t.graph.degree(node), 1u);
    } else {
      EXPECT_EQ(t.graph.degree(node), 4u);
    }
  }
}

TEST(FatTree, K2Minimal) {
  const Topology t = topology::fat_tree(2);
  EXPECT_EQ(t.host_count(), 2u);
  EXPECT_TRUE(t.graph.connected());
}

TEST(RandomCluster, AllHostsConnected) {
  hmn::util::Rng rng(3);
  const Topology t = topology::random_cluster(25, 0.2, rng);
  EXPECT_EQ(t.host_count(), 25u);
  EXPECT_EQ(t.switch_count(), 0u);
  EXPECT_TRUE(t.graph.connected());
}

TEST(HostNodes, EnumeratesInOrder) {
  const Topology t = topology::star(3);
  const auto hosts = t.host_nodes();
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[0], n(0));
  EXPECT_EQ(hosts[2], n(2));
  EXPECT_TRUE(t.is_host(n(0)));
  EXPECT_FALSE(t.is_host(n(3)));
}

}  // namespace
