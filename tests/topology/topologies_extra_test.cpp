// Tests for the extended topology builders: 3-D torus, switch tree,
// dragonfly.
#include <gtest/gtest.h>

#include <set>

#include "graph/metrics.h"
#include "topology/topologies.h"

namespace {

using namespace hmn;
using topology::NodeRole;
using topology::Topology;

NodeId n(unsigned v) { return NodeId{v}; }

void expect_simple_graph(const graph::Graph& g) {
  std::set<std::pair<unsigned, unsigned>> seen;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    EXPECT_NE(ep.a, ep.b);
    const std::pair<unsigned, unsigned> key{
        std::min(ep.a.value(), ep.b.value()),
        std::max(ep.a.value(), ep.b.value())};
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate edge " << key.first << "-" << key.second;
  }
}

TEST(Torus3d, CubeShape) {
  const Topology t = topology::torus_3d(3, 3, 3);
  EXPECT_EQ(t.host_count(), 27u);
  // 3 edges per node in a 3-D torus with all dims > 2: 3 * 27 = 81.
  EXPECT_EQ(t.graph.edge_count(), 81u);
  EXPECT_TRUE(t.graph.connected());
  expect_simple_graph(t.graph);
  for (unsigned i = 0; i < 27; ++i) EXPECT_EQ(t.graph.degree(n(i)), 6u);
}

TEST(Torus3d, DegenerateDimensionsCollapse) {
  // 1-wide dims reduce to lower-dimensional tori.
  const Topology flat = topology::torus_3d(4, 4, 1);
  const Topology square = topology::torus_2d(4, 4);
  EXPECT_EQ(flat.graph.edge_count(), square.graph.edge_count());
  expect_simple_graph(flat.graph);

  const Topology pair = topology::torus_3d(2, 1, 1);
  EXPECT_EQ(pair.graph.edge_count(), 1u);
  expect_simple_graph(pair.graph);

  const Topology single = topology::torus_3d(1, 1, 1);
  EXPECT_EQ(single.graph.edge_count(), 0u);
}

TEST(Torus3d, DiameterMatchesManhattanWrap) {
  const Topology t = topology::torus_3d(4, 4, 4);
  // Max wrap distance per dim = 2; diameter = 6.
  EXPECT_DOUBLE_EQ(graph::distance_metrics(t.graph).diameter, 6.0);
}

TEST(Mesh2d, ShapeAndDegrees) {
  const Topology t = topology::mesh_2d(3, 4);
  EXPECT_EQ(t.host_count(), 12u);
  // Edges: rows*(cols-1) + (rows-1)*cols = 9 + 8 = 17.
  EXPECT_EQ(t.graph.edge_count(), 17u);
  EXPECT_TRUE(t.graph.connected());
  expect_simple_graph(t.graph);
  EXPECT_EQ(t.graph.degree(n(0)), 2u);   // corner
  EXPECT_EQ(t.graph.degree(n(1)), 3u);   // edge
  EXPECT_EQ(t.graph.degree(n(5)), 4u);   // interior
}

TEST(Mesh2d, DiameterIsManhattan) {
  const Topology t = topology::mesh_2d(3, 4);
  EXPECT_DOUBLE_EQ(graph::distance_metrics(t.graph).diameter, 5.0);
}

TEST(Mesh2d, SingleRowIsLine) {
  const Topology t = topology::mesh_2d(1, 5);
  EXPECT_EQ(t.graph.edge_count(), 4u);
}

TEST(SwitchTree, SingleLevel) {
  const Topology t = topology::switch_tree(4, 8, 2);
  EXPECT_EQ(t.host_count(), 4u);
  EXPECT_EQ(t.switch_count(), 1u);  // all hosts under one leaf = root
  EXPECT_TRUE(t.graph.connected());
}

TEST(SwitchTree, TwoLevels) {
  // 8 hosts, 2 per leaf -> 4 leaves; fanout 4 -> 1 root.  5 switches.
  const Topology t = topology::switch_tree(8, 2, 4);
  EXPECT_EQ(t.host_count(), 8u);
  EXPECT_EQ(t.switch_count(), 5u);
  EXPECT_TRUE(t.graph.connected());
  // Host-to-host worst case: host-leaf-root-leaf-host = 4 hops.
  EXPECT_DOUBLE_EQ(graph::distance_metrics(t.graph).diameter, 4.0);
}

TEST(SwitchTree, ThreeLevels) {
  // 16 hosts, 2/leaf -> 8 leaves; fanout 2 -> 4 -> 2 -> 1: 8+4+2+1 = 15.
  const Topology t = topology::switch_tree(16, 2, 2);
  EXPECT_EQ(t.switch_count(), 15u);
  EXPECT_TRUE(t.graph.connected());
  expect_simple_graph(t.graph);
}

TEST(SwitchTree, UnevenGroupsStillConnected) {
  const Topology t = topology::switch_tree(7, 3, 2);
  EXPECT_EQ(t.host_count(), 7u);
  EXPECT_TRUE(t.graph.connected());
}

TEST(Dragonfly, ShapeAndConnectivity) {
  const Topology t = topology::dragonfly(4, 4);
  EXPECT_EQ(t.host_count(), 16u);
  EXPECT_EQ(t.switch_count(), 0u);
  // Intra: 4 groups x C(4,2) = 24; inter: C(4,2) = 6.
  EXPECT_EQ(t.graph.edge_count(), 30u);
  EXPECT_TRUE(t.graph.connected());
  expect_simple_graph(t.graph);
}

TEST(Dragonfly, SmallDiameter) {
  // Dragonfly diameter <= 3 (local, global, local).
  const Topology t = topology::dragonfly(6, 4);
  EXPECT_LE(graph::distance_metrics(t.graph).diameter, 3.0);
}

TEST(Dragonfly, SingleGroupIsFullMesh) {
  const Topology t = topology::dragonfly(1, 5);
  EXPECT_EQ(t.graph.edge_count(), 10u);
  EXPECT_DOUBLE_EQ(t.graph.density(), 1.0);
}

TEST(Dragonfly, GlobalLinksSpreadOverRouters) {
  // With routers >= groups-1, every router carries at most one global link.
  const Topology t = topology::dragonfly(4, 4);
  // Count inter-group incidences per router.
  std::vector<std::size_t> globals(t.graph.node_count(), 0);
  for (std::size_t e = 0; e < t.graph.edge_count(); ++e) {
    const auto ep = t.graph.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    if (ep.a.value() / 4 != ep.b.value() / 4) {
      ++globals[ep.a.index()];
      ++globals[ep.b.index()];
    }
  }
  for (const std::size_t g : globals) EXPECT_LE(g, 1u);
}

}  // namespace
