// Tier-aware healing with k-of-n replica groups: quorate groups defer
// repair, quorum loss forces it, power events mask whole domains, and
// overlapping blast + power outages heal in a deterministic order.
#include <gtest/gtest.h>

#include <vector>

#include "orchestrator/healer.h"
#include "testing/fixtures.h"
#include "workload/churn.h"
#include "workload/host_generator.h"
#include "workload/power_domains.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::HealAction;
using orchestrator::Healer;
using orchestrator::HealerOptions;
using workload::EventKind;
using workload::TenantEvent;

HealerOptions tier_aware_opts() {
  HealerOptions opts;
  opts.tier_aware = true;
  return opts;
}

TenantEvent element_event(EventKind kind, double t, std::uint32_t element) {
  TenantEvent ev;
  ev.time = t;
  ev.kind = kind;
  ev.element = element;
  return ev;
}

TenantEvent group_event(EventKind kind, double t, std::uint32_t element,
                        std::vector<std::uint32_t> hosts,
                        std::vector<std::uint32_t> links) {
  TenantEvent ev = element_event(kind, t, element);
  ev.group_hosts = std::move(hosts);
  ev.group_links = std::move(links);
  return ev;
}

/// Three heavyweight replicas (one per host) in a 2-of-3 group, linked in
/// a chain so dead-replica links exercise the audit exemption.
model::VirtualEnvironment replicated_venv(double mem_mb = 3000.0) {
  model::VirtualEnvironment venv;
  std::vector<GuestId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(venv.add_guest({10, mem_mb, 100}));
  venv.add_link(ids[0], ids[1], {1.0, 60.0});
  venv.add_link(ids[1], ids[2], {1.0, 60.0});
  venv.add_replica_group(ids, 2);
  return venv;
}

TEST(ReplicaHealingTest, QuorateGroupDefersInsteadOfRepairing) {
  emulator::TenancyManager mgr(line_cluster(3));
  const auto admitted = mgr.admit("rep", replicated_venv(), 1);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  Healer::LiveMap live{{5, *admitted.tenant}};
  Healer healer(tier_aware_opts());

  const core::Mapping before = mgr.tenant(*admitted.tenant)->mapping;
  const NodeId victim = before.guest_host[0];
  const auto records = healer.on_event(
      mgr, live, element_event(EventKind::kHostFail, 1.0, victim.value()));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kReplicaDeferred);
  EXPECT_EQ(records[0].guests_moved, 0u);
  EXPECT_TRUE(healer.is_deferred(5));

  // The mapping is untouched — the dead replica stays where it was — and
  // the audit accepts it because the corpse is declared.
  EXPECT_EQ(mgr.tenant(live.at(5))->mapping.guest_host, before.guest_host);
  EXPECT_TRUE(healer.audit(mgr, live).empty()) << healer.audit(mgr, live)[0];

  // Recovery restores the tenant for free: no migration ever happened.
  const auto restored = healer.on_event(
      mgr, live,
      element_event(EventKind::kHostRecover, 2.0, victim.value()));
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].action, HealAction::kRestored);
  EXPECT_EQ(restored[0].guests_moved, 0u);
  EXPECT_FALSE(healer.is_deferred(5));
  EXPECT_EQ(mgr.tenant(live.at(5))->mapping.guest_host, before.guest_host);
}

TEST(ReplicaHealingTest, QuorumLossForcesRealRepair) {
  // Five hosts: three carry one replica each, two stay empty so a
  // two-host outage still leaves repair room.
  emulator::TenancyManager mgr(line_cluster(5));
  const auto admitted = mgr.admit("rep", replicated_venv(), 1);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  Healer::LiveMap live{{5, *admitted.tenant}};
  Healer healer(tier_aware_opts());

  const auto& mapping = mgr.tenant(*admitted.tenant)->mapping;
  const std::uint32_t h0 = mapping.guest_host[0].value();
  const std::uint32_t h1 = mapping.guest_host[1].value();

  // First loss: 2 of 3 alive — deferred.
  auto records = healer.on_event(
      mgr, live, element_event(EventKind::kHostFail, 1.0, h0));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kReplicaDeferred);

  // Second loss: 1 of 3 alive < required 2 — the group is no longer
  // quorate, so the healer must actually move guests now.  The tenant
  // was deferred, so a successful repair reports it kRestored (whole
  // again), with real migrations this time.
  records = healer.on_event(mgr, live,
                            element_event(EventKind::kHostFail, 2.0, h1));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kRestored);
  EXPECT_GE(records[0].guests_moved, 2u);
  EXPECT_FALSE(healer.is_deferred(5));
  EXPECT_TRUE(healer.audit(mgr, live).empty());
}

TEST(ReplicaHealingTest, NonReplicaDamageIsNeverDeferred) {
  emulator::TenancyManager mgr(line_cluster(5));
  // Group {0,1,2} plus a loose guest 3 outside any group.
  model::VirtualEnvironment venv = replicated_venv();
  venv.add_guest({10, 3000.0, 100});
  const auto admitted = mgr.admit("mix", venv, 1);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  Healer::LiveMap live{{9, *admitted.tenant}};
  Healer healer(tier_aware_opts());

  const NodeId loose_host = mgr.tenant(*admitted.tenant)->mapping.guest_host[3];
  const auto records = healer.on_event(
      mgr, live,
      element_event(EventKind::kHostFail, 1.0, loose_host.value()));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kHealed);
  EXPECT_FALSE(healer.is_deferred(9));
}

TEST(ReplicaHealingTest, PowerEventMasksDomainAndDefersQuorate) {
  // A power event's element is a DOMAIN id; only the group lists may touch
  // masks.  Striping host % 2 downs every other host at once.
  auto cluster = line_cluster(4);
  workload::annotate_failure_domains(cluster, 2);
  emulator::TenancyManager mgr(cluster);
  const auto admitted = mgr.admit("rep", replicated_venv(), 1);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  Healer::LiveMap live{{5, *admitted.tenant}};
  Healer healer(tier_aware_opts());

  const auto hosts = workload::power_domain_hosts(cluster, 2, 1);
  const auto fail = group_event(EventKind::kPowerFail, 1.0, 1, hosts, {});
  const auto records = healer.on_event(mgr, live, fail);
  for (const std::uint32_t h : hosts) {
    EXPECT_TRUE(mgr.is_node_down(NodeId{h}));
  }
  // Domain 1 = hosts {1, 3}; one replica sat on each of hosts 0..2, so
  // exactly one group member died — quorate, deferred.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kReplicaDeferred);
  EXPECT_TRUE(healer.audit(mgr, live).empty());

  const auto recover =
      group_event(EventKind::kPowerRecover, 2.0, 1, hosts, {});
  const auto restored = healer.on_event(mgr, live, recover);
  for (const std::uint32_t h : hosts) {
    EXPECT_FALSE(mgr.is_node_down(NodeId{h}));
  }
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].action, HealAction::kRestored);
}

TEST(ReplicaHealingTest, TierOrderPutsGoldFirst) {
  // Two solo tenants on a two-host cluster; a blast downs both hosts, so
  // both park.  tier_aware orders the records gold-first even though the
  // best-effort tenant has the lower key.
  emulator::TenancyManager mgr(line_cluster(2));
  model::VirtualEnvironment best_effort;
  best_effort.add_guest({10, 3000.0, 100});
  best_effort.set_sla_tier(model::SlaTier::kBestEffort);
  model::VirtualEnvironment gold;
  gold.add_guest({10, 3000.0, 100});
  gold.set_sla_tier(model::SlaTier::kGold);

  const auto a = mgr.admit("be", best_effort, 1);
  const auto b = mgr.admit("au", gold, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  Healer::LiveMap live{{2, *a.tenant}, {10, *b.tenant}};
  Healer healer(tier_aware_opts());

  const auto records = healer.on_event(
      mgr, live, group_event(EventKind::kBlastFail, 1.0, 0, {0, 1}, {0}));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, 10u);  // gold first despite the higher key
  EXPECT_EQ(records[0].action, HealAction::kParked);
  EXPECT_EQ(records[1].key, 2u);
  EXPECT_EQ(records[1].action, HealAction::kParked);
}

TEST(ReplicaHealingTest, OverlappingBlastAndPowerHealDeterministically) {
  // A rack blast and a power outage with overlapping membership, then a
  // partial recovery — the full sequence must replay byte-identically,
  // and the audit must stay clean at every step (last-writer-wins masks).
  util::Rng rng(3);
  auto caps = workload::generate_hosts(8, workload::paper_host_profile(), rng);
  auto cluster = model::PhysicalCluster::build(
      topology::switch_tree(8, 4, 2), std::move(caps),
      workload::paper_link_props());
  workload::annotate_failure_domains(cluster, 2);

  const auto& fd = cluster.failure_domains();
  // Rack = every host under the lowest leaf switch; power domain 0
  // stripes across both racks, so the two groups overlap but differ.
  std::uint32_t leaf = model::FailureDomains::kNone;
  for (const NodeId h : cluster.hosts()) {
    leaf = std::min(leaf, fd.blast_domain[h.index()]);
  }
  std::vector<std::uint32_t> rack_hosts;
  for (const NodeId h : cluster.hosts()) {
    if (fd.blast_domain[h.index()] == leaf) rack_hosts.push_back(h.value());
  }
  const auto power_hosts = workload::power_domain_hosts(cluster, 2, 0);
  ASSERT_NE(rack_hosts, power_hosts);

  const std::vector<TenantEvent> script = {
      group_event(EventKind::kBlastFail, 1.0, leaf, rack_hosts, {}),
      group_event(EventKind::kPowerFail, 1.5, 0, power_hosts, {}),
      group_event(EventKind::kBlastRecover, 2.0, leaf, rack_hosts, {}),
      group_event(EventKind::kPowerRecover, 3.0, 0, power_hosts, {}),
  };

  auto run = [&](std::vector<std::pair<std::uint32_t, HealAction>>& out) {
    emulator::TenancyManager mgr(cluster);
    Healer::LiveMap live;
    Healer healer(tier_aware_opts());
    std::uint32_t key = 0;
    for (const char* name : {"t0", "t1", "t2"}) {
      const auto res = mgr.admit(name, replicated_venv(1200.0), 7 + key);
      ASSERT_TRUE(res.ok()) << res.detail;
      live[key++] = *res.tenant;
    }
    for (const TenantEvent& ev : script) {
      for (const auto& r : healer.on_event(mgr, live, ev)) {
        out.emplace_back(r.key, r.action);
      }
      const auto violations = healer.audit(mgr, live);
      EXPECT_TRUE(violations.empty())
          << "after t=" << ev.time << ": " << violations[0];
    }
    // Every mask cleared: nothing may stay degraded, deferred, or parked.
    EXPECT_FALSE(mgr.has_failed_elements());
    EXPECT_EQ(healer.deferred_count(), 0u);
    EXPECT_EQ(live.size(), 3u);
  };

  std::vector<std::pair<std::uint32_t, HealAction>> first, second;
  run(first);
  run(second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
