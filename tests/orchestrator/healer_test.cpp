// Tests for the Healer: transactional repair after host/link failures,
// Degraded tenancy, the parked queue with exponential backoff, the
// independent invariant auditor, and failure-laden replay determinism.
#include <gtest/gtest.h>

#include "core/repair.h"
#include "core/validator.h"
#include "io/trace.h"
#include "orchestrator/healer.h"
#include "orchestrator/orchestrator.h"
#include "testing/fixtures.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::HealAction;
using orchestrator::Healer;
using orchestrator::HealerOptions;
using workload::EventKind;
using workload::TenantEvent;

TenantEvent element_event(EventKind kind, double t, std::uint32_t element) {
  TenantEvent ev;
  ev.time = t;
  ev.kind = kind;
  ev.element = element;
  return ev;
}

/// Two linked guests of `mem_mb` each.
model::VirtualEnvironment pair_venv(double mem_mb) {
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, mem_mb, 100});
  const GuestId b = venv.add_guest({10, mem_mb, 100});
  venv.add_link(a, b, {1.0, 60.0});
  return venv;
}

model::VirtualEnvironment solo_venv(double mem_mb) {
  model::VirtualEnvironment venv;
  venv.add_guest({10, mem_mb, 100});
  return venv;
}

TEST(HealerTest, HostFailureHealsByMovingGuests) {
  emulator::TenancyManager mgr(line_cluster(3, {1000, 4096, 4096}));
  const auto admitted = mgr.admit("t7", pair_venv(1500.0), 1);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  Healer::LiveMap live{{7, *admitted.tenant}};
  Healer healer;

  const NodeId victim = mgr.tenant(*admitted.tenant)->mapping.guest_host[0];
  const auto records = healer.on_event(
      mgr, live, element_event(EventKind::kHostFail, 1.0, victim.value()));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kHealed);
  EXPECT_GE(records[0].guests_moved, 1u);
  EXPECT_EQ(records[0].dark_links, 0u);

  ASSERT_EQ(live.count(7), 1u);
  const auto* tenant = mgr.tenant(live.at(7));
  EXPECT_TRUE(
      core::mapping_avoids_node(mgr.cluster(), tenant->mapping, victim));
  EXPECT_TRUE(
      core::validate_mapping(mgr.cluster(), tenant->venv, tenant->mapping)
          .ok());
  EXPECT_TRUE(healer.audit(mgr, live).empty());
  EXPECT_TRUE(mgr.has_failed_elements());

  // Recovery clears the mask; nothing is degraded or parked, so no records.
  EXPECT_TRUE(healer
                  .on_event(mgr, live,
                            element_event(EventKind::kHostRecover, 2.0,
                                          victim.value()))
                  .empty());
  EXPECT_FALSE(mgr.has_failed_elements());
}

TEST(HealerTest, UnroutableLinkDegradesThenRestores) {
  // Two hosts joined by one edge: the tenant spans both, and when the only
  // edge dies its link cannot re-route.  Guests survive; the link goes dark.
  emulator::TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  const auto admitted = mgr.admit("t3", pair_venv(3000.0), 1);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  Healer::LiveMap live{{3, *admitted.tenant}};
  Healer healer;

  auto records =
      healer.on_event(mgr, live, element_event(EventKind::kLinkFail, 1.0, 0));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kDegraded);
  EXPECT_EQ(records[0].dark_links, 1u);
  EXPECT_TRUE(healer.is_degraded(3));
  EXPECT_EQ(healer.degraded_count(), 1u);
  EXPECT_TRUE(mgr.tenant(live.at(3))->mapping.link_paths[0].empty());
  // The dark link is declared, so the independent audit stays clean.
  EXPECT_TRUE(healer.audit(mgr, live).empty());

  // The edge comes back: the opportunistic re-heal routes the link again.
  records = healer.on_event(mgr, live,
                            element_event(EventKind::kLinkRecover, 5.0, 0));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kRestored);
  EXPECT_EQ(healer.degraded_count(), 0u);
  const auto* tenant = mgr.tenant(live.at(3));
  EXPECT_FALSE(tenant->mapping.link_paths[0].empty());
  EXPECT_TRUE(
      core::validate_mapping(mgr.cluster(), tenant->venv, tenant->mapping)
          .ok());
  EXPECT_TRUE(healer.audit(mgr, live).empty());
}

TEST(HealerTest, CriticalLinkEvictsInsteadOfGoingDark) {
  // The best-effort twin of this scenario (UnroutableLinkDegradesThen-
  // Restores) keeps the tenant Degraded.  With the link marked critical
  // the repair must fail instead, so the healer evicts and parks.
  emulator::TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 3000.0, 100});
  const GuestId b = venv.add_guest({10, 3000.0, 100});
  venv.add_link(a, b, {1.0, 60.0, /*critical=*/true});
  const auto admitted = mgr.admit("t5", venv, 1);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  Healer::LiveMap live{{5, *admitted.tenant}};
  Healer healer;

  const auto records =
      healer.on_event(mgr, live, element_event(EventKind::kLinkFail, 1.0, 0));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kParked);
  EXPECT_FALSE(healer.is_degraded(5));
  EXPECT_EQ(healer.parked_count(), 1u);
  EXPECT_EQ(live.count(5), 0u);
  EXPECT_TRUE(healer.audit(mgr, live).empty());

  // Recovery re-admits the parked tenant, links fully routed.
  const auto back = healer.on_event(
      mgr, live, element_event(EventKind::kLinkRecover, 3.0, 0));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].action, HealAction::kReadmitted);
  EXPECT_EQ(live.count(5), 1u);
  EXPECT_FALSE(mgr.tenant(live.at(5))->mapping.link_paths[0].empty());
}

TEST(HealerTest, BlastGroupHealsAsOneTransaction) {
  // Two racks of two hosts (switch_tree(4, 2, 2)); a blast kills one leaf
  // switch with its two hosts and every incident link at once.  All masks
  // must flip before any healing, every impacted tenant is handled exactly
  // once, nothing may land back on a group member, and the single recover
  // restores the whole group.
  const auto cluster = model::PhysicalCluster::build(
      topology::switch_tree(4, 2, 2),
      std::vector<model::HostCapacity>(4, {1000, 4096, 4096}), {1000.0, 5.0});
  emulator::TenancyManager mgr(cluster);
  Healer::LiveMap live;
  for (std::uint32_t k = 0; k < 2; ++k) {
    const auto admitted =
        mgr.admit("t" + std::to_string(k), pair_venv(1500.0), k + 1);
    ASSERT_TRUE(admitted.ok()) << admitted.detail;
    live[k] = *admitted.tenant;
  }

  // Take a real generated blast so the group lists match the topology.
  workload::FailureOptions fo;
  fo.horizon = 200.0;
  fo.blast_mttf = 50.0;
  std::vector<TenantEvent> blasts;
  for (const TenantEvent& ev :
       workload::generate_failures(fo, cluster, 11)) {
    if (ev.group_hosts.size() == 2) blasts.push_back(ev);  // a leaf switch
    if (blasts.size() == 2) break;                         // fail + recover
  }
  ASSERT_EQ(blasts.size(), 2u);
  ASSERT_EQ(blasts[0].kind, EventKind::kBlastFail);
  ASSERT_EQ(blasts[1].kind, EventKind::kBlastRecover);

  Healer healer;
  TenantEvent fail = blasts[0];
  fail.time = 1.0;
  healer.on_event(mgr, live, fail);
  EXPECT_TRUE(mgr.has_failed_elements());
  // Whatever survived, no committed mapping touches any group member, and
  // the independent audit is clean after the one-shot group application.
  for (const auto& [key, id] : live) {
    const auto* tenant = mgr.tenant(id);
    EXPECT_TRUE(core::mapping_avoids_node(mgr.cluster(), tenant->mapping,
                                          NodeId{fail.element}));
    for (const std::uint32_t h : fail.group_hosts) {
      EXPECT_TRUE(core::mapping_avoids_node(mgr.cluster(), tenant->mapping,
                                            NodeId{h}));
    }
    for (const std::uint32_t l : fail.group_links) {
      EXPECT_TRUE(core::mapping_avoids_edge(tenant->mapping, EdgeId{l}));
    }
  }
  EXPECT_TRUE(healer.audit(mgr, live).empty());

  // One recover clears every member mask and re-heals opportunistically.
  TenantEvent recover = blasts[1];
  recover.time = 5.0;
  healer.on_event(mgr, live, recover);
  EXPECT_FALSE(mgr.has_failed_elements());
  EXPECT_TRUE(healer.audit(mgr, live).empty());
  EXPECT_EQ(healer.degraded_count(), 0u);
}

TEST(HealerTest, EvictionParksThenReadmitsOnRecovery) {
  // Each host fits one 3000 MB guest; when one host dies its tenant cannot
  // be re-placed and is parked, then re-admitted once the host returns.
  emulator::TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  const auto a = mgr.admit("a", solo_venv(3000.0), 1);
  const auto b = mgr.admit("b", solo_venv(3000.0), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  Healer::LiveMap live{{1, *a.tenant}, {2, *b.tenant}};
  Healer healer;

  const NodeId victim = mgr.tenant(*b.tenant)->mapping.guest_host[0];
  auto records = healer.on_event(
      mgr, live, element_event(EventKind::kHostFail, 1.0, victim.value()));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kParked);
  EXPECT_NE(records[0].error, core::MapErrorCode::kNone);
  EXPECT_EQ(live.count(2), 0u);
  EXPECT_EQ(healer.parked_count(), 1u);
  EXPECT_TRUE(healer.audit(mgr, live).empty());

  records = healer.on_event(
      mgr, live, element_event(EventKind::kHostRecover, 3.0, victim.value()));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kReadmitted);
  EXPECT_DOUBLE_EQ(records[0].outage, 2.0);
  EXPECT_EQ(live.count(2), 1u);
  EXPECT_EQ(healer.parked_count(), 0u);
  EXPECT_TRUE(healer.audit(mgr, live).empty());
}

TEST(HealerTest, BackoffGatesRetriesAndBudgetDrops) {
  HealerOptions opts;
  opts.max_heal_attempts = 2;
  opts.backoff_base = 1.0;
  opts.backoff_factor = 2.0;
  emulator::TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  const auto a = mgr.admit("a", solo_venv(3000.0), 1);
  const auto b = mgr.admit("b", solo_venv(3000.0), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  Healer::LiveMap live{{1, *a.tenant}, {2, *b.tenant}};
  Healer healer(opts);

  const NodeId victim = mgr.tenant(*b.tenant)->mapping.guest_host[0];
  (void)healer.on_event(
      mgr, live, element_event(EventKind::kHostFail, 1.0, victim.value()));
  ASSERT_EQ(healer.parked_count(), 1u);

  // The host stays down.  Attempt 1 fails silently and arms the backoff
  // gate at t=3 (2 + base*factor^0); a poll before the gate is a no-op.
  EXPECT_TRUE(healer.on_capacity_freed(mgr, live, 2.0).empty());
  EXPECT_TRUE(healer.on_capacity_freed(mgr, live, 2.5).empty());
  EXPECT_EQ(healer.parked_count(), 1u);

  // Attempt 2 exhausts the budget: the tenant is dropped with its outage.
  const auto records = healer.on_capacity_freed(mgr, live, 4.0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, HealAction::kDropped);
  EXPECT_DOUBLE_EQ(records[0].outage, 3.0);
  EXPECT_EQ(healer.parked_count(), 0u);
}

TEST(HealerTest, AbandonParkedReturnsOutage) {
  emulator::TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  const auto a = mgr.admit("a", solo_venv(3000.0), 1);
  const auto b = mgr.admit("b", solo_venv(3000.0), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  Healer::LiveMap live{{1, *a.tenant}, {2, *b.tenant}};
  Healer healer;
  const NodeId victim = mgr.tenant(*b.tenant)->mapping.guest_host[0];
  (void)healer.on_event(
      mgr, live, element_event(EventKind::kHostFail, 1.0, victim.value()));
  ASSERT_EQ(healer.parked_count(), 1u);

  EXPECT_FALSE(healer.abandon_parked(99, 5.0).has_value());
  const auto outage = healer.abandon_parked(2, 5.0);
  ASSERT_TRUE(outage.has_value());
  EXPECT_DOUBLE_EQ(*outage, 4.0);
  EXPECT_EQ(healer.parked_count(), 0u);
}

TEST(HealerTest, AuditCatchesUnhealedFailure) {
  // Flip a mask behind the Healer's back: the auditor must flag the guest
  // stranded on the failed host (and any path over its edges) even though
  // the manager's own bookkeeping is untouched.
  emulator::TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  const auto admitted = mgr.admit("t", pair_venv(3000.0), 1);
  ASSERT_TRUE(admitted.ok());
  Healer::LiveMap live{{0, *admitted.tenant}};
  Healer healer;
  EXPECT_TRUE(healer.audit(mgr, live).empty());

  mgr.set_node_down(mgr.tenant(*admitted.tenant)->mapping.guest_host[0],
                    true);
  EXPECT_FALSE(healer.audit(mgr, live).empty());
}

TEST(HealerTest, OutOfRangeElementIsIgnored) {
  emulator::TenancyManager mgr(line_cluster(2));
  Healer::LiveMap live;
  Healer healer;
  EXPECT_TRUE(
      healer.on_event(mgr, live, element_event(EventKind::kHostFail, 1.0, 99))
          .empty());
  EXPECT_TRUE(
      healer.on_event(mgr, live, element_event(EventKind::kLinkFail, 1.0, 99))
          .empty());
  EXPECT_FALSE(mgr.has_failed_elements());
}

/// Churn + failures on the paper's switched cluster.
workload::ChurnTrace failure_trace(const model::PhysicalCluster& cluster,
                                   std::uint64_t seed) {
  workload::ChurnOptions opts;
  opts.arrival_rate = 0.5;
  opts.horizon = 40.0;
  opts.mean_lifetime = 12.0;
  opts.min_guests = 4;
  opts.max_guests = 8;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};
  workload::ChurnTrace trace =
      workload::generate_churn(opts, util::derive_seed(seed, 1));
  workload::FailureOptions fopts;
  fopts.horizon = opts.horizon;
  fopts.host_mttf = 25.0;
  fopts.host_mttr = 4.0;
  fopts.link_mttf = 20.0;
  fopts.link_mttr = 4.0;
  workload::merge_events(
      trace,
      workload::generate_failures(fopts, cluster, util::derive_seed(seed, 2)));
  return trace;
}

TEST(OrchestratorFailureTest, FailureLadenReplayIsDeterministicAndAudited) {
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, 11);
  const auto trace = failure_trace(cluster, 20090922);

  orchestrator::Orchestrator first(cluster, trace.profile);
  orchestrator::Orchestrator second(cluster, trace.profile);
  const std::string sig = first.run(trace).decision_signature();
  EXPECT_EQ(second.run(trace).decision_signature(), sig);

  const auto& report = first.report();
  EXPECT_GT(report.host_failures + report.link_failures, 0u);
  EXPECT_GT(report.recoveries, 0u);
  EXPECT_TRUE(report.invariant_violations.empty())
      << report.invariant_violations.front();
  EXPECT_GE(report.tenant_minutes_lost, 0.0);
  EXPECT_GE(report.degraded_minutes, 0.0);

  // Record -> JSONL -> replay, failures included.
  const auto reloaded = io::read_trace_or_throw(io::write_trace(trace));
  orchestrator::Orchestrator replayed(cluster, reloaded.profile);
  EXPECT_EQ(replayed.run(reloaded).decision_signature(), sig);
}

TEST(OrchestratorFailureTest, DropReadmitPolicyIsDeterministicAndAudited) {
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, 11);
  const auto trace = failure_trace(cluster, 31337);
  orchestrator::OrchestratorOptions opts;
  opts.healer.policy = orchestrator::HealPolicy::kDropReadmit;

  orchestrator::Orchestrator first(cluster, trace.profile, opts);
  orchestrator::Orchestrator second(cluster, trace.profile, opts);
  const std::string sig = first.run(trace).decision_signature();
  EXPECT_EQ(second.run(trace).decision_signature(), sig);
  EXPECT_TRUE(first.report().invariant_violations.empty())
      << first.report().invariant_violations.front();
}

}  // namespace
