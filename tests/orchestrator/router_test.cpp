// Tests for the sharded placement router: admission/release lifecycle,
// power-of-two-choices fallback, duplicate-key rejection, and — the
// property the whole design hangs on — byte-identical decision logs for
// threads=1 vs threads=N at the same seed.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/map_result.h"
#include "model/physical_cluster.h"
#include "orchestrator/router.h"
#include "testing/fixtures.h"
#include "topology/topologies.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using orchestrator::AdmissionRequest;
using orchestrator::PlacementRouter;
using orchestrator::RouterDecision;
using orchestrator::RouterOptions;

model::PhysicalCluster tree_fabric(std::size_t hosts) {
  return model::PhysicalCluster::build(
      topology::switch_tree(hosts, 8, 4),
      std::vector<model::HostCapacity>(hosts, {1000, 4096, 4096}),
      model::LinkProps{1000.0, 5.0});
}

AdmissionRequest request(std::uint32_t key, std::size_t guests,
                         std::uint64_t seed) {
  AdmissionRequest req;
  req.key = key;
  req.venv = test::chain_venv(guests);
  req.seed = seed;
  return req;
}

TEST(PlacementRouterTest, AdmitReleaseLifecycle) {
  RouterOptions opts;
  opts.shards = 4;
  PlacementRouter router(tree_fabric(32), opts);
  ASSERT_GE(router.shard_count(), 2u);

  std::vector<std::uint32_t> admitted;
  for (std::uint32_t key = 1; key <= 6; ++key) {
    const RouterDecision d = router.admit(request(key, 3, 100 + key), key);
    ASSERT_TRUE(d.admitted) << "key " << key;
    EXPECT_EQ(d.key, key);
    EXPECT_GE(d.shard, 0);
    EXPECT_LT(static_cast<std::size_t>(d.shard), router.shard_count());
    EXPECT_GE(d.attempts, 1u);
    EXPECT_NE(d.placement_hash, 0u);
    admitted.push_back(key);
  }
  EXPECT_EQ(router.tenant_count(), admitted.size());
  EXPECT_EQ(router.decision_log().size(), admitted.size());
  EXPECT_EQ(router.latency_histogram().count(), admitted.size());

  for (const std::uint32_t key : admitted) {
    EXPECT_TRUE(router.release(key));
  }
  EXPECT_EQ(router.tenant_count(), 0u);
  EXPECT_FALSE(router.release(999));  // unknown key
}

TEST(PlacementRouterTest, HeadroomTracksAdmissions) {
  RouterOptions opts;
  opts.shards = 4;
  PlacementRouter router(tree_fabric(32), opts);
  std::vector<double> before(router.shard_count());
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    before[s] = router.headroom(s);
  }

  const RouterDecision d = router.admit(request(1, 4, 7), 7);
  ASSERT_TRUE(d.admitted);
  const auto shard = static_cast<std::size_t>(d.shard);
  EXPECT_LT(router.headroom(shard), before[shard]);

  ASSERT_TRUE(router.release(1));
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    EXPECT_DOUBLE_EQ(router.headroom(s), before[s]);
  }
}

TEST(PlacementRouterTest, DuplicateKeysRejectedAsInvalidInput) {
  RouterOptions opts;
  opts.shards = 2;
  PlacementRouter router(tree_fabric(16), opts);

  ASSERT_TRUE(router.admit(request(5, 2, 1), 1).admitted);
  // Same key again, while the first is live.
  const RouterDecision dup = router.admit(request(5, 2, 2), 2);
  EXPECT_FALSE(dup.admitted);
  EXPECT_EQ(dup.error, core::MapErrorCode::kInvalidInput);

  // Duplicate inside one batch: the first instance wins, later ones are
  // rejected without touching any shard.
  std::vector<AdmissionRequest> batch{request(7, 2, 3), request(7, 2, 4)};
  const auto decisions = router.admit_batch(batch, 3);
  EXPECT_TRUE(decisions[0].admitted);
  EXPECT_FALSE(decisions[1].admitted);
  EXPECT_EQ(decisions[1].error, core::MapErrorCode::kInvalidInput);
  EXPECT_EQ(decisions[1].attempts, 0u);

  // After release the key is reusable.
  ASSERT_TRUE(router.release(5));
  EXPECT_TRUE(router.admit(request(5, 2, 5), 5).admitted);
}

TEST(PlacementRouterTest, FallsBackThroughShardsUntilFullThenRejects) {
  // One guest per host (memory-saturating), so every shard has a hard
  // admission count; once the fabric is full the router must have walked
  // every shard before rejecting.
  RouterOptions opts;
  opts.shards = 4;
  PlacementRouter router(tree_fabric(16), opts);

  model::GuestRequirements big{75, 4096, 150};
  std::uint32_t key = 1;
  std::size_t admitted = 0;
  for (; key <= 32; ++key) {
    AdmissionRequest req;
    req.key = key;
    req.venv.add_guest(big);
    req.seed = key;
    const RouterDecision d = router.admit(std::move(req), 1000 + key);
    if (!d.admitted) break;
    ++admitted;
  }
  EXPECT_EQ(admitted, 16u);  // exactly one guest per host fits

  AdmissionRequest overflow;
  overflow.key = 900;
  overflow.venv.add_guest(big);
  overflow.seed = 900;
  const RouterDecision rejected = router.admit(std::move(overflow), 900);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.shard, -1);
  // Exhaustive fallback: every shard was tried before giving up.
  EXPECT_EQ(rejected.attempts, router.shard_count());
  EXPECT_NE(rejected.error, core::MapErrorCode::kNone);
}

TEST(PlacementRouterTest, FallsBackWhenHeadroomWinnerCannotFit) {
  // Two single-host shards.  Host 0 has far more CPU (the P2C score) but
  // too little memory for the request, so the score-preferred probe must
  // fail and the router must fall back to shard 1 on the second attempt.
  std::vector<model::HostCapacity> caps{{10000, 4096, 4096},
                                        {1000, 8192, 4096}};
  const auto fabric = model::PhysicalCluster::build(
      topology::line(2), std::move(caps), model::LinkProps{1000.0, 5.0});

  RouterOptions opts;
  opts.shards = 2;
  PlacementRouter router(fabric, opts);
  ASSERT_EQ(router.shard_count(), 2u);
  ASSERT_GT(router.headroom(0), router.headroom(1));

  AdmissionRequest req;
  req.key = 1;
  req.venv.add_guest({10, 6000, 150});  // fits host 1's memory only
  req.seed = 3;
  const RouterDecision d = router.admit(std::move(req), 3);
  ASSERT_TRUE(d.admitted);
  EXPECT_EQ(d.shard, 1);
  EXPECT_EQ(d.attempts, 2u);
}

/// The ISSUE's regression gate: identical decision logs (and so identical
/// placement_hash sequences) for threads=1 vs threads=N at the same seed,
/// across multiple batches with interleaved releases.
TEST(PlacementRouterTest, DecisionLogIdenticalAcrossThreadCounts) {
  const auto fabric = tree_fabric(64);

  auto run = [&](std::size_t threads) {
    RouterOptions opts;
    opts.shards = 8;
    opts.threads = threads;
    PlacementRouter router(fabric, opts);
    std::uint32_t key = 0;
    for (std::uint64_t batch_no = 0; batch_no < 4; ++batch_no) {
      std::vector<AdmissionRequest> batch;
      for (std::size_t i = 0; i < 12; ++i) {
        batch.push_back(
            request(++key, 2 + i % 4, util::derive_seed(42, batch_no, i)));
      }
      router.admit_batch(batch, util::derive_seed(42, batch_no));
      // Departures between batches shift headroom identically in both runs.
      router.release(key - 3);
      router.release(key - 7);
    }
    return router.decision_signature();
  };

  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(16));
}

TEST(PlacementRouterTest, SingleShardDegeneratesToFlatAdmission) {
  RouterOptions opts;
  opts.shards = 1;
  PlacementRouter router(tree_fabric(16), opts);
  ASSERT_EQ(router.shard_count(), 1u);
  const RouterDecision d = router.admit(request(1, 4, 11), 11);
  ASSERT_TRUE(d.admitted);
  EXPECT_EQ(d.shard, 0);
  EXPECT_EQ(d.attempts, 1u);
  // The single shard is the whole fabric.
  EXPECT_EQ(router.shard(0).cluster.host_count(), 16u);
}

}  // namespace
