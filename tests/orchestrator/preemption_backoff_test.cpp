// Fairness satellites: the retry-queue preemption budget (a starving
// giant is abandoned with an explicit decision once enough backfills are
// admitted past it) and the healer's bounded-exponential parked-queue
// backoff (deterministic schedule, flat at the cap, finite for any
// attempt count).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "orchestrator/healer.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/retry_queue.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::Decision;
using orchestrator::Healer;
using orchestrator::HealerOptions;
using orchestrator::Orchestrator;
using orchestrator::OrchestratorOptions;
using orchestrator::PendingTenant;
using orchestrator::QueuePolicy;
using orchestrator::RetryQueue;
using workload::EventKind;
using workload::TenantEvent;

workload::GuestProfile one_host_guests() {
  // Every guest fills most of one 4096 MB host: admission capacity is
  // exactly "number of free hosts".
  workload::GuestProfile p;
  p.proc_mips = {100.0, 100.0};
  p.mem_mb = {3000.0, 3000.0};
  p.stor_gb = {100.0, 100.0};
  p.link_bw_mbps = {1.0, 1.0};
  p.link_lat_ms = {60.0, 60.0};
  return p;
}

TenantEvent arrive(double t, std::uint32_t tenant, std::size_t guests) {
  TenantEvent ev;
  ev.time = t;
  ev.kind = EventKind::kArrive;
  ev.tenant = tenant;
  ev.guest_count = guests;
  ev.density = 0.0;
  ev.seed = tenant + 1;
  return ev;
}

TenantEvent depart(double t, std::uint32_t tenant) {
  TenantEvent ev;
  ev.time = t;
  ev.kind = EventKind::kDepart;
  ev.tenant = tenant;
  return ev;
}

TEST(RetryQueuePreemption, FailedEntriesAreChargedPerAdmission) {
  RetryQueue queue(/*max_attempts=*/0, /*max_size=*/0, QueuePolicy::kFifo,
                   /*max_passovers=*/3);
  PendingTenant small;
  small.key = 1;
  PendingTenant giant;
  giant.key = 2;
  EXPECT_TRUE(queue.push(giant));  // giant is AHEAD of the small in FIFO
  EXPECT_TRUE(queue.push(small));

  // Drain 1: only the small fits.  The giant is charged one passover even
  // though it was tried first — capacity existed and went elsewhere.
  auto r = queue.drain(
      [](const PendingTenant& t) { return t.key == 1; });
  ASSERT_EQ(r.admitted.size(), 1u);
  EXPECT_TRUE(r.preempted.empty());
  EXPECT_EQ(queue.size(), 1u);

  // Drains 2 and 3: one more small admitted each time.  After the third
  // charged passover the giant is preempted, not silently re-queued.
  for (int round = 0; round < 2; ++round) {
    PendingTenant filler;
    filler.key = 10 + round;
    EXPECT_TRUE(queue.push(filler));
    r = queue.drain([](const PendingTenant& t) { return t.key >= 10; });
    ASSERT_EQ(r.admitted.size(), 1u) << "round " << round;
  }
  ASSERT_EQ(r.preempted.size(), 1u);
  EXPECT_EQ(r.preempted[0].key, 2u);
  EXPECT_EQ(r.preempted[0].passed_over, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(RetryQueuePreemption, NoAdmissionMeansNoCharge) {
  // An empty-handed drain (nothing fits) proves nobody jumped anybody:
  // no passovers accrue, however many drains pass.
  RetryQueue queue(0, 0, QueuePolicy::kFifo, /*max_passovers=*/1);
  PendingTenant giant;
  giant.key = 5;
  EXPECT_TRUE(queue.push(giant));
  for (int i = 0; i < 10; ++i) {
    const auto r = queue.drain([](const PendingTenant&) { return false; });
    EXPECT_TRUE(r.preempted.empty());
  }
  EXPECT_EQ(queue.size(), 1u);
}

TEST(RetryQueuePreemption, AttemptCapWinsTies) {
  // An entry exhausting both budgets in the same drain is dropped (tries
  // exhausted), not preempted — the stricter verdict wins.
  RetryQueue queue(/*max_attempts=*/1, 0, QueuePolicy::kFifo,
                   /*max_passovers=*/1);
  PendingTenant small;
  small.key = 1;
  PendingTenant giant;
  giant.key = 2;
  EXPECT_TRUE(queue.push(giant));
  EXPECT_TRUE(queue.push(small));
  const auto r =
      queue.drain([](const PendingTenant& t) { return t.key == 1; });
  ASSERT_EQ(r.dropped.size(), 1u);
  EXPECT_EQ(r.dropped[0].key, 2u);
  EXPECT_TRUE(r.preempted.empty());
}

TEST(OrchestratorPreemption, StarvingGiantUnderSmallestFirstIsPreempted) {
  // Two hosts, one guest each.  The giant (2 guests) can never fit while
  // any small runs; under kSmallestFirst every drain admits the waiting
  // small first, so without a budget the giant starves invisibly.
  OrchestratorOptions opts;
  opts.queue_policy = QueuePolicy::kSmallestFirst;
  opts.retry_max_attempts = 8;
  opts.retry_max_passovers = 2;
  opts.defrag_every_departures = 0;
  Orchestrator orch(line_cluster(2, {1000, 4096, 4096}), one_host_guests(),
                    opts);

  EXPECT_EQ(orch.handle(arrive(0.0, 100, 1)).decision, Decision::kAdmitted);
  EXPECT_EQ(orch.handle(arrive(0.5, 101, 1)).decision, Decision::kAdmitted);
  EXPECT_EQ(orch.handle(arrive(1.0, 7, 2)).decision, Decision::kQueued);
  EXPECT_EQ(orch.handle(arrive(1.5, 102, 1)).decision, Decision::kQueued);

  // Departure 1: the small backfills (passover 1 for the giant).
  orch.handle(depart(2.0, 100));
  EXPECT_EQ(orch.report().admitted_from_queue, 1u);
  EXPECT_EQ(orch.report().preempted, 0u);

  // Another small queues; departure 2 backfills it: passover 2 == budget.
  EXPECT_EQ(orch.handle(arrive(2.5, 103, 1)).decision, Decision::kQueued);
  orch.handle(depart(3.0, 101));

  const auto& report = orch.report();
  EXPECT_EQ(report.admitted_from_queue, 2u);
  ASSERT_EQ(report.preempted, 1u);
  const auto& d = report.decisions.back();
  EXPECT_EQ(d.decision, Decision::kPreempted);
  EXPECT_EQ(d.tenant, 7u);
  EXPECT_DOUBLE_EQ(d.queue_wait, 2.0);  // queued at 1.0, preempted at 3.0
  EXPECT_EQ(report.dropped, 0u);
  // The giant is gone: its later departure is a no-op, not an abandon.
  EXPECT_EQ(orch.handle(depart(4.0, 7)).decision, Decision::kNoOp);
}

TEST(OrchestratorPreemption, ZeroBudgetNeverPreempts) {
  // Default (0) keeps the legacy behavior byte-identical: same scenario,
  // giant survives every drain.
  OrchestratorOptions opts;
  opts.queue_policy = QueuePolicy::kSmallestFirst;
  opts.retry_max_attempts = 8;
  opts.defrag_every_departures = 0;
  Orchestrator orch(line_cluster(2, {1000, 4096, 4096}), one_host_guests(),
                    opts);
  EXPECT_EQ(orch.handle(arrive(0.0, 100, 1)).decision, Decision::kAdmitted);
  EXPECT_EQ(orch.handle(arrive(0.5, 101, 1)).decision, Decision::kAdmitted);
  EXPECT_EQ(orch.handle(arrive(1.0, 7, 2)).decision, Decision::kQueued);
  EXPECT_EQ(orch.handle(arrive(1.5, 102, 1)).decision, Decision::kQueued);
  orch.handle(depart(2.0, 100));
  EXPECT_EQ(orch.handle(arrive(2.5, 103, 1)).decision, Decision::kQueued);
  orch.handle(depart(3.0, 101));
  EXPECT_EQ(orch.report().preempted, 0u);
  // Still queued: departing now is an abandon, proving it was never
  // preempted.
  EXPECT_EQ(orch.handle(depart(4.0, 7)).decision, Decision::kAbandoned);
}

// --- bounded-exponential parked-queue backoff ----------------------------

TEST(HealerBackoff, ScheduleIsBoundedExponentialAndDeterministic) {
  HealerOptions opts;
  opts.backoff_base = 1.0;
  opts.backoff_factor = 2.0;
  opts.backoff_max = 32.0;
  const Healer healer(opts);
  const double expect[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 32.0, 32.0};
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_DOUBLE_EQ(healer.backoff_delay_for_testing(n), expect[n - 1])
        << "attempt " << n;
  }
  // Two healers with the same options agree exactly — the schedule is
  // configuration, not state.
  const Healer other(opts);
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_DOUBLE_EQ(other.backoff_delay_for_testing(n),
                     healer.backoff_delay_for_testing(n));
  }
}

TEST(HealerBackoff, HugeAttemptCountsSaturateFinite) {
  // The regression this guards: pow(factor, n) for large n overflows to
  // infinity and a parked tenant's next_attempt becomes "never".  Capped
  // repeated multiplication must stay flat at backoff_max instead.
  HealerOptions opts;
  opts.backoff_base = 0.5;
  opts.backoff_factor = 3.0;
  opts.backoff_max = 20.0;
  const Healer healer(opts);
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{4096}, std::size_t{1} << 40,
        std::numeric_limits<std::size_t>::max()}) {
    const double d = healer.backoff_delay_for_testing(n);
    EXPECT_TRUE(std::isfinite(d)) << "attempts " << n;
    EXPECT_DOUBLE_EQ(d, 20.0) << "attempts " << n;
  }
}

TEST(HealerBackoff, CapBelowBaseClampsToCap) {
  HealerOptions opts;
  opts.backoff_base = 5.0;
  opts.backoff_factor = 2.0;
  opts.backoff_max = 3.0;
  const Healer healer(opts);
  EXPECT_DOUBLE_EQ(healer.backoff_delay_for_testing(1), 3.0);
  EXPECT_DOUBLE_EQ(healer.backoff_delay_for_testing(9), 3.0);
}

}  // namespace
