// Tests for the availability layer: the EWMA tracker itself, the biased
// admission view of the TenancyManager, the orchestrator's invisibility
// invariant (aware == blind until the first failure), and the
// PlacementRouter's availability-scaled P2C scores.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "availability/availability_tracker.h"
#include "core/hmn_mapper.h"
#include "emulator/tenancy.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/router.h"
#include "testing/fixtures.h"
#include "topology/topologies.h"
#include "workload/churn.h"
#include "workload/presets.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using availability::AvailabilityOptions;
using availability::AvailabilityTracker;
using availability::ClassTracker;

TEST(AvailabilityTracker, NeverFailedElementsReportExactlyOne) {
  ClassTracker t(4, {});
  for (std::uint32_t e = 0; e < 4; ++e) {
    EXPECT_EQ(t.availability(e), 1.0);
    EXPECT_FALSE(t.is_down(e));
  }
  // A transition elsewhere never perturbs an untouched element.
  t.on_fail(1, 5.0);
  EXPECT_EQ(t.availability(0), 1.0);
  EXPECT_EQ(t.availability(2), 1.0);
}

TEST(AvailabilityTracker, DownElementsSitAtTheFloor) {
  AvailabilityOptions opts;
  opts.floor = 0.1;
  ClassTracker t(2, opts);
  t.on_fail(0, 10.0);
  EXPECT_TRUE(t.is_down(0));
  EXPECT_DOUBLE_EQ(t.availability(0), 0.1);
}

TEST(AvailabilityTracker, RecoveryFoldsTheDownIntervalEwma) {
  AvailabilityOptions opts;
  opts.tau = 50.0;
  ClassTracker t(1, opts);
  // Up for 100, down for 10: fail at t=100 folds the up interval (x=1,
  // avail stays 1), recover at t=110 folds the down interval with
  // alpha = 1 - exp(-10/50).
  t.on_fail(0, 100.0);
  t.on_recover(0, 110.0);
  const double alpha = 1.0 - std::exp(-10.0 / 50.0);
  EXPECT_FALSE(t.is_down(0));
  EXPECT_NEAR(t.availability(0), 1.0 - alpha, 1e-12);
  // A long stable up interval pulls the estimate back toward 1 (checked
  // after the next recovery: while down, availability() reports the floor).
  t.on_fail(0, 400.0);
  t.on_recover(0, 401.0);
  EXPECT_GT(t.availability(0), 1.0 - alpha);
}

TEST(AvailabilityTracker, DuplicateTransitionsAreNoOps) {
  // Overlapping blast groups can replay a member's fail/recover; the
  // second application of either direction must not move the estimate.
  ClassTracker t(1, {});
  t.on_fail(0, 10.0);
  const double down = t.availability(0);
  t.on_fail(0, 12.0);  // already down
  EXPECT_EQ(t.availability(0), down);
  t.on_recover(0, 20.0);
  const double up = t.availability(0);
  t.on_recover(0, 25.0);  // already up
  EXPECT_EQ(t.availability(0), up);
}

TEST(AvailabilityTracker, OutOfRangeElementsAreIgnored) {
  ClassTracker t(2, {});
  t.on_fail(99, 1.0);  // no crash, no history
  EXPECT_EQ(t.availability(99), 1.0);

  AvailabilityTracker tracker(2, 3);
  tracker.on_node_fail(50, 1.0);  // still flips the history latch
  EXPECT_TRUE(tracker.has_history());
}

TEST(AvailabilityTracker, WeightsAreAllOneUntilFirstFailure) {
  AvailabilityTracker tracker(3, 2);
  EXPECT_FALSE(tracker.has_history());
  for (const double w : tracker.node_weights()) EXPECT_EQ(w, 1.0);

  tracker.on_node_fail(1, 4.0);
  tracker.on_node_recover(1, 6.0);
  ASSERT_TRUE(tracker.has_history());
  const auto weights = tracker.node_weights();
  EXPECT_EQ(weights[0], 1.0);
  EXPECT_LT(weights[1], 1.0);
  EXPECT_EQ(weights[2], 1.0);
}

TEST(TenancyBias, DefaultsLeaveAdmissionUntouched) {
  // With all-1.0 weights and zero headroom the biased admission view is
  // byte-identical to the plain residual view: same placements.
  const auto venv = hmn::test::chain_venv(3);
  emulator::TenancyManager plain(hmn::test::line_cluster(4));
  emulator::TenancyManager biased(hmn::test::line_cluster(4));
  biased.set_host_weights(std::vector<double>(4, 1.0));
  biased.set_admission_headroom(0.0);
  const auto a = plain.admit("t1", venv, 7);
  const auto b = biased.admit("t1", venv, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(plain.tenant(*a.tenant)->mapping.guest_host,
            biased.tenant(*b.tenant)->mapping.guest_host);
}

TEST(TenancyBias, HeadroomReservationRejectsWhatStillFitsRaw) {
  // One host, 4096 MB.  A 3900 MB guest fits raw but not once 10% of the
  // host is withheld; the healer path (reserve_headroom = false) still
  // gets the full host.
  emulator::TenancyManager mgr(hmn::test::line_cluster(1));
  mgr.set_admission_headroom(0.1);
  model::VirtualEnvironment venv;
  venv.add_guest({10, 3900.0, 100});
  const auto refused = mgr.admit("t1", venv, 1);
  EXPECT_FALSE(refused.ok());
  const auto healed = mgr.admit("t1", venv, 1, /*reserve_headroom=*/false);
  EXPECT_TRUE(healed.ok()) << healed.detail;
}

TEST(TenancyBias, WeightsSteerPlacementTowardReliableHosts) {
  // Two identical hosts; a solo guest lands on the higher-scoring one.
  // Down-weighting host 0 must flip Hosting's most-CPU ordering.
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100.0, 100});
  emulator::TenancyManager mgr(hmn::test::line_cluster(2));
  mgr.set_host_weights({0.5, 1.0});
  const auto admitted = mgr.admit("t1", venv, 3);
  ASSERT_TRUE(admitted.ok()) << admitted.detail;
  EXPECT_EQ(mgr.tenant(*admitted.tenant)->mapping.guest_host[0], NodeId{1});

  emulator::TenancyManager flipped(hmn::test::line_cluster(2));
  flipped.set_host_weights({1.0, 0.5});
  const auto other = flipped.admit("t1", venv, 3);
  ASSERT_TRUE(other.ok()) << other.detail;
  EXPECT_EQ(flipped.tenant(*other.tenant)->mapping.guest_host[0], NodeId{0});
}

extensions::HeuristicPool hmn_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return pool;
}

TEST(OrchestratorAvailability, AwareIsInvisibleWithoutFailures) {
  // The tentpole's tie gate in miniature: on a failure-free trace the
  // availability-aware orchestrator must produce a byte-identical decision
  // signature to the blind one.
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, 5);
  workload::ChurnOptions copts;
  copts.arrival_rate = 1.0;
  copts.horizon = 30.0;
  copts.profile = workload::high_level_profile();
  const auto trace = workload::generate_churn(copts, 99);

  orchestrator::OrchestratorOptions aware;
  aware.availability_aware = true;
  aware.spare_headroom = 0.2;
  orchestrator::Orchestrator a(cluster, trace.profile, hmn_pool(), aware);
  orchestrator::Orchestrator b(cluster, trace.profile, hmn_pool(), {});
  EXPECT_EQ(a.run(trace).decision_signature(),
            b.run(trace).decision_signature());
  EXPECT_FALSE(a.availability().has_history());
}

TEST(OrchestratorAvailability, BlastEventsFeedTheTrackerAndCount) {
  const auto cluster = model::PhysicalCluster::build(
      topology::switch_tree(4, 2, 2),
      std::vector<model::HostCapacity>(4, {1000, 4096, 4096}), {1000.0, 5.0});
  workload::ChurnOptions copts;
  copts.arrival_rate = 0.5;
  copts.horizon = 60.0;
  copts.profile = workload::high_level_profile();
  workload::ChurnTrace trace = workload::generate_churn(copts, 12);
  workload::FailureOptions fo;
  fo.horizon = 60.0;
  fo.blast_mttf = 20.0;
  workload::merge_events(trace,
                         workload::generate_failures(fo, cluster, 13));

  orchestrator::OrchestratorOptions opts;
  opts.availability_aware = true;
  orchestrator::Orchestrator orch(cluster, trace.profile, hmn_pool(), opts);
  const auto& report = orch.run(trace);
  EXPECT_GT(report.blast_failures, 0u);
  EXPECT_TRUE(report.invariant_violations.empty());
  EXPECT_TRUE(orch.availability().has_history());
  // At least one host under a blasted switch carries degraded availability.
  bool any_scarred = false;
  for (const NodeId h : cluster.hosts()) {
    if (orch.availability().node_availability(h.value()) < 1.0) {
      any_scarred = true;
    }
  }
  EXPECT_TRUE(any_scarred);
}

model::PhysicalCluster tree_fabric(std::size_t hosts) {
  return model::PhysicalCluster::build(
      topology::switch_tree(hosts, 8, 4),
      std::vector<model::HostCapacity>(hosts, {1000, 4096, 4096}),
      model::LinkProps{1000.0, 5.0});
}

TEST(RouterAvailability, ScoresAreNeutralWithoutHistory) {
  const auto cluster = tree_fabric(16);
  orchestrator::RouterOptions ropts;
  ropts.shards = 4;
  orchestrator::PlacementRouter router(cluster, ropts);
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    EXPECT_EQ(router.shard_availability(s), 1.0);
  }
  AvailabilityTracker idle(cluster.node_count(), cluster.link_count());
  router.set_availability(&idle);
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    EXPECT_EQ(router.shard_availability(s), 1.0);
  }
}

TEST(RouterAvailability, ScarredShardScoresBelowItsPeers) {
  const auto cluster = tree_fabric(16);
  orchestrator::RouterOptions ropts;
  ropts.shards = 4;
  orchestrator::PlacementRouter router(cluster, ropts);
  ASSERT_GT(router.shard_count(), 1u);

  AvailabilityTracker tracker(cluster.node_count(), cluster.link_count());
  // Scar every host of shard 0 in the parent fabric's id space.
  const auto& shard0 = router.shard(0);
  for (const NodeId local : shard0.cluster.hosts()) {
    const std::uint32_t parent = shard0.parent_node(local).value();
    tracker.on_node_fail(parent, 10.0);
    tracker.on_node_recover(parent, 40.0);
  }
  router.set_availability(&tracker);
  EXPECT_LT(router.shard_availability(0), 1.0);
  for (std::size_t s = 1; s < router.shard_count(); ++s) {
    EXPECT_EQ(router.shard_availability(s), 1.0);
  }
}

}  // namespace
