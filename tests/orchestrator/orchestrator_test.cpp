// Tests for the online orchestrator: retry-queue semantics, admission /
// backfill / growth decisions, defragmentation invariants, and trace
// replay determinism.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "io/trace.h"
#include "orchestrator/defrag.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/retry_queue.h"
#include "testing/fixtures.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::Decision;
using orchestrator::Orchestrator;
using orchestrator::OrchestratorOptions;
using orchestrator::PendingTenant;
using orchestrator::RetryQueue;
using workload::EventKind;
using workload::TenantEvent;

/// Degenerate ranges make every generated guest bit-exact predictable.
workload::GuestProfile fixed_profile(double mem_mb, double proc_mips = 100.0) {
  workload::GuestProfile p;
  p.proc_mips = {proc_mips, proc_mips};
  p.mem_mb = {mem_mb, mem_mb};
  p.stor_gb = {100.0, 100.0};
  p.link_bw_mbps = {1.0, 1.0};
  p.link_lat_ms = {60.0, 60.0};
  return p;
}

TenantEvent arrive(double t, std::uint32_t tenant, std::size_t guests,
                   std::uint64_t seed) {
  TenantEvent ev;
  ev.time = t;
  ev.kind = EventKind::kArrive;
  ev.tenant = tenant;
  ev.guest_count = guests;
  ev.density = 0.0;  // spanning tree
  ev.seed = seed;
  return ev;
}

TenantEvent depart(double t, std::uint32_t tenant) {
  TenantEvent ev;
  ev.time = t;
  ev.kind = EventKind::kDepart;
  ev.tenant = tenant;
  return ev;
}

TenantEvent grow(double t, std::uint32_t tenant, std::size_t add_guests,
                 std::size_t add_links, std::uint64_t seed) {
  TenantEvent ev;
  ev.time = t;
  ev.kind = EventKind::kGrow;
  ev.tenant = tenant;
  ev.add_guests = add_guests;
  ev.add_links = add_links;
  ev.seed = seed;
  return ev;
}

TEST(RetryQueueTest, FifoDrainDropAndErase) {
  RetryQueue queue(/*max_attempts=*/3, /*max_size=*/2);
  PendingTenant a;
  a.key = 1;
  a.attempts = 1;
  PendingTenant b;
  b.key = 2;
  b.attempts = 2;
  EXPECT_TRUE(queue.push(a));
  EXPECT_TRUE(queue.push(b));
  EXPECT_TRUE(queue.full());
  // A full queue refuses instead of asserting: the caller turns this into
  // a kRejected decision.
  PendingTenant overflow;
  overflow.key = 3;
  EXPECT_FALSE(queue.push(overflow));
  EXPECT_EQ(queue.size(), 2u);

  // Admit nobody: b reaches 3 attempts and is dropped, a stays.
  auto r = queue.drain([](const PendingTenant&) { return false; });
  EXPECT_TRUE(r.admitted.empty());
  ASSERT_EQ(r.dropped.size(), 1u);
  EXPECT_EQ(r.dropped[0].key, 2u);
  EXPECT_EQ(queue.size(), 1u);

  // Erase the survivor, as if it departed while queued.
  const auto erased = queue.erase(1);
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(erased->attempts, 2u);  // incremented by the failed drain
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.erase(1).has_value());

  // FIFO: the first pushed is the first offered.
  PendingTenant c;
  c.key = 7;
  PendingTenant d;
  d.key = 8;
  EXPECT_TRUE(queue.push(c));
  EXPECT_TRUE(queue.push(d));
  std::vector<std::uint32_t> offered;
  (void)queue.drain([&](const PendingTenant& t) {
    offered.push_back(t.key);
    return true;
  });
  EXPECT_EQ(offered, (std::vector<std::uint32_t>{7, 8}));
}

TEST(OrchestratorTest, BackfillsQueuedTenantAfterDeparture) {
  // Two hosts x 4096 MB; each tenant (2 guests x 3000 MB) needs both.
  Orchestrator orch(line_cluster(2, {1000, 4096, 4096}),
                    fixed_profile(3000.0));
  EXPECT_EQ(orch.handle(arrive(0.0, 0, 2, 1)).decision, Decision::kAdmitted);
  const auto queued = orch.handle(arrive(1.0, 1, 2, 2));
  EXPECT_EQ(queued.decision, Decision::kQueued);
  EXPECT_NE(queued.error, core::MapErrorCode::kNone);
  EXPECT_EQ(orch.handle(depart(3.5, 0)).decision, Decision::kDeparted);

  const auto& report = orch.report();
  ASSERT_EQ(report.decisions.size(), 4u);  // + the backfill admission
  EXPECT_EQ(report.decisions[3].decision, Decision::kAdmittedFromQueue);
  EXPECT_EQ(report.decisions[3].tenant, 1u);
  EXPECT_DOUBLE_EQ(report.decisions[3].queue_wait, 2.5);
  EXPECT_EQ(report.admitted_from_queue, 1u);
  EXPECT_DOUBLE_EQ(report.acceptance_rate(), 1.0);
  EXPECT_EQ(orch.tenancy().tenant_count(), 1u);
}

TEST(OrchestratorTest, DepartWhileQueuedIsAbandoned) {
  Orchestrator orch(line_cluster(2, {1000, 4096, 4096}),
                    fixed_profile(3000.0));
  EXPECT_EQ(orch.handle(arrive(0.0, 0, 2, 1)).decision, Decision::kAdmitted);
  EXPECT_EQ(orch.handle(arrive(1.0, 1, 2, 2)).decision, Decision::kQueued);
  const auto abandoned = orch.handle(depart(4.0, 1));
  EXPECT_EQ(abandoned.decision, Decision::kAbandoned);
  EXPECT_DOUBLE_EQ(abandoned.queue_wait, 3.0);
  EXPECT_EQ(orch.report().abandoned, 1u);
  // The abandoned tenant is gone: later departures are no-ops for it.
  EXPECT_EQ(orch.handle(depart(5.0, 1)).decision, Decision::kNoOp);
}

TEST(OrchestratorTest, DropsTenantAfterRetryBudget) {
  OrchestratorOptions opts;
  opts.retry_max_attempts = 2;
  // Three hosts: tenant 0 takes two, tenant 2 (1 guest) the third.  While 0
  // runs, the 2-guest tenant 1 can never fit (only one host has room), so
  // tenant 2's departure triggers a retry that fails and exhausts its budget.
  Orchestrator orch(line_cluster(3, {1000, 4096, 4096}),
                    fixed_profile(3000.0), opts);
  EXPECT_EQ(orch.handle(arrive(0.0, 0, 2, 1)).decision, Decision::kAdmitted);
  EXPECT_EQ(orch.handle(arrive(1.0, 1, 2, 2)).decision, Decision::kQueued);
  EXPECT_EQ(orch.handle(arrive(2.0, 2, 1, 3)).decision, Decision::kAdmitted);
  // 2 departs; the drain re-attempts 1 (second attempt) and drops it.
  EXPECT_EQ(orch.handle(depart(3.0, 2)).decision, Decision::kDeparted);
  const auto& report = orch.report();
  EXPECT_EQ(report.dropped, 1u);
  const auto& last = report.decisions.back();
  EXPECT_EQ(last.decision, Decision::kDropped);
  EXPECT_EQ(last.error, core::MapErrorCode::kTriesExhausted);
  EXPECT_DOUBLE_EQ(last.queue_wait, 2.0);
}

TEST(OrchestratorTest, QueueFullRejectsOutright) {
  OrchestratorOptions opts;
  opts.max_queue = 1;
  Orchestrator orch(line_cluster(2, {1000, 4096, 4096}),
                    fixed_profile(3000.0), opts);
  EXPECT_EQ(orch.handle(arrive(0.0, 0, 2, 1)).decision, Decision::kAdmitted);
  EXPECT_EQ(orch.handle(arrive(1.0, 1, 2, 2)).decision, Decision::kQueued);
  EXPECT_EQ(orch.handle(arrive(2.0, 2, 2, 3)).decision, Decision::kRejected);
  EXPECT_EQ(orch.report().rejected, 1u);
}

TEST(OrchestratorTest, GrowthExtendsInPlace) {
  Orchestrator orch(line_cluster(3), fixed_profile(256.0, 75.0));
  EXPECT_EQ(orch.handle(arrive(0.0, 0, 2, 1)).decision, Decision::kAdmitted);
  const auto grown = orch.handle(grow(1.0, 0, 1, 0, 5));
  EXPECT_EQ(grown.decision, Decision::kGrown);
  const auto ids = orch.tenancy().tenant_ids();
  ASSERT_EQ(ids.size(), 1u);
  const auto* tenant = orch.tenancy().tenant(ids[0]);
  EXPECT_EQ(tenant->venv.guest_count(), 3u);
  EXPECT_TRUE(core::validate_mapping(orch.tenancy().cluster(), tenant->venv,
                                     tenant->mapping)
                  .ok());
  EXPECT_EQ(orch.report().grown_in_place, 1u);
}

TEST(OrchestratorTest, InfeasibleGrowthLeavesTenantUntouched) {
  Orchestrator orch(line_cluster(2, {1000, 4096, 4096}),
                    fixed_profile(3000.0));
  EXPECT_EQ(orch.handle(arrive(0.0, 0, 2, 1)).decision, Decision::kAdmitted);
  // A third 3000 MB guest fits neither incrementally nor by full remap.
  const auto rejected = orch.handle(grow(1.0, 0, 1, 0, 5));
  EXPECT_EQ(rejected.decision, Decision::kGrowthRejected);
  const auto ids = orch.tenancy().tenant_ids();
  const auto* tenant = orch.tenancy().tenant(ids[0]);
  EXPECT_EQ(tenant->venv.guest_count(), 2u);  // unchanged
  EXPECT_EQ(orch.report().growth_rejected, 1u);
  // Growth events for unknown tenants are no-ops.
  EXPECT_EQ(orch.handle(grow(2.0, 9, 1, 0, 6)).decision, Decision::kNoOp);
}

TEST(DefragTest, ReducesImbalanceAndPreservesValidity) {
  // Heterogeneous CPUs so the Migration stage has real gradients to walk.
  emulator::TenancyManager mgr(line_cluster(
      {{3000, 4096, 4096}, {1000, 4096, 4096}, {2000, 4096, 4096},
       {1500, 4096, 4096}}));
  util::Rng rng(5);
  std::vector<emulator::TenantId> admitted;
  for (int i = 0; i < 6; ++i) {
    model::VirtualEnvironment venv;
    const auto a = venv.add_guest(
        {rng.uniform(100, 500), rng.uniform(400, 1200), 50});
    const auto b = venv.add_guest(
        {rng.uniform(100, 500), rng.uniform(400, 1200), 50});
    venv.add_link(a, b, {rng.uniform(1, 5), 60.0});
    const auto result =
        mgr.admit("t" + std::to_string(i), std::move(venv),
                  static_cast<std::uint64_t>(100 + i));
    ASSERT_TRUE(result.ok()) << result.detail;
    admitted.push_back(*result.tenant);
  }
  // Carve holes: departures unbalance what admission balanced.
  ASSERT_TRUE(mgr.release(admitted[0]));
  ASSERT_TRUE(mgr.release(admitted[3]));

  const auto pass = orchestrator::run_defrag(mgr);
  EXPECT_TRUE(pass.committed) << pass.detail;
  EXPECT_LE(pass.lbf_after, pass.lbf_before + 1e-9);
  for (const auto id : mgr.tenant_ids()) {
    const auto* tenant = mgr.tenant(id);
    EXPECT_TRUE(core::validate_mapping(mgr.cluster(), tenant->venv,
                                       tenant->mapping)
                    .ok())
        << "tenant " << id << " invalidated by defrag";
  }
  // Full release restores the pristine cluster.
  for (const auto id : mgr.tenant_ids()) EXPECT_TRUE(mgr.release(id));
  const auto residual = mgr.residual_cluster();
  for (const NodeId h : mgr.cluster().hosts()) {
    EXPECT_NEAR(residual.capacity(h).mem_mb, mgr.cluster().capacity(h).mem_mb,
                1e-6);
    EXPECT_NEAR(residual.capacity(h).proc_mips,
                mgr.cluster().capacity(h).proc_mips, 1e-6);
  }
  for (std::size_t e = 0; e < mgr.cluster().link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    EXPECT_NEAR(residual.link(id).bandwidth_mbps,
                mgr.cluster().link(id).bandwidth_mbps, 1e-6);
  }
}

TEST(DefragTest, NoTenantsIsCleanNoOp) {
  emulator::TenancyManager mgr(line_cluster(3));
  const auto pass = orchestrator::run_defrag(mgr);
  EXPECT_FALSE(pass.committed);
  EXPECT_EQ(pass.migrations, 0u);
}

/// The bench's churn configuration at a reduced horizon.
workload::ChurnTrace replay_trace(std::uint64_t seed) {
  workload::ChurnOptions opts;
  opts.arrival_rate = 0.45;
  opts.horizon = 60.0;
  opts.mean_lifetime = 20.0;
  opts.min_guests = 4;
  opts.max_guests = 10;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};
  opts.grow_probability = 0.25;
  opts.max_grow_guests = 3;
  return workload::generate_churn(opts, seed);
}

TEST(OrchestratorTest, ReplayIsDeterministic) {
  const auto trace = replay_trace(20090922);
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, 11);

  Orchestrator first(cluster, trace.profile);
  Orchestrator second(cluster, trace.profile);
  const std::string sig_first = first.run(trace).decision_signature();
  const std::string sig_second = second.run(trace).decision_signature();
  EXPECT_EQ(sig_first, sig_second);
  EXPECT_GT(first.report().arrivals, 10u);

  // Record -> replay through the JSONL trace format.
  const auto reloaded = io::read_trace_or_throw(io::write_trace(trace));
  Orchestrator replayed(cluster, reloaded.profile);
  EXPECT_EQ(replayed.run(reloaded).decision_signature(), sig_first);
}

TEST(OrchestratorTest, DefragNeverLowersAcceptance) {
  const auto trace = replay_trace(31337);
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, 11);

  OrchestratorOptions off;
  off.defrag_every_departures = 0;
  Orchestrator without(cluster, trace.profile, off);
  const double base = without.run(trace).acceptance_rate();

  Orchestrator with(cluster, trace.profile);
  const double defragged = with.run(trace).acceptance_rate();
  EXPECT_GE(defragged, base);
  EXPECT_GT(with.report().defrag.passes, 0u);
}

}  // namespace
