// Backfill queue policies: FIFO baseline, smallest-first, and
// largest-wait-first must each drain in their documented deterministic
// order.
#include <gtest/gtest.h>

#include <vector>

#include "orchestrator/retry_queue.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using orchestrator::PendingTenant;
using orchestrator::QueuePolicy;
using orchestrator::RetryQueue;

PendingTenant pending(std::uint32_t key, std::size_t guests,
                      double enqueued_at) {
  PendingTenant t;
  t.key = key;
  t.name = "t" + std::to_string(key);
  t.venv = chain_venv(guests);
  t.enqueued_at = enqueued_at;
  return t;
}

/// Drains rejecting everything and returns the keys in attempt order.
std::vector<std::uint32_t> drain_order(RetryQueue& queue) {
  std::vector<std::uint32_t> order;
  (void)queue.drain([&](const PendingTenant& t) {
    order.push_back(t.key);
    return false;
  });
  return order;
}

TEST(RetryPolicyTest, FifoIsTheDefaultAndKeepsArrivalOrder) {
  RetryQueue queue;
  EXPECT_EQ(queue.policy(), QueuePolicy::kFifo);
  ASSERT_TRUE(queue.push(pending(3, 8, 1.0)));
  ASSERT_TRUE(queue.push(pending(1, 2, 2.0)));
  ASSERT_TRUE(queue.push(pending(2, 5, 3.0)));
  EXPECT_EQ(drain_order(queue), (std::vector<std::uint32_t>{3, 1, 2}));
  // Rejected entries stay in FIFO order for the next drain.
  EXPECT_EQ(drain_order(queue), (std::vector<std::uint32_t>{3, 1, 2}));
}

TEST(RetryPolicyTest, SmallestFirstOrdersByGuestCount) {
  RetryQueue queue(0, 0, QueuePolicy::kSmallestFirst);
  ASSERT_TRUE(queue.push(pending(3, 8, 1.0)));
  ASSERT_TRUE(queue.push(pending(1, 2, 2.0)));
  ASSERT_TRUE(queue.push(pending(2, 5, 3.0)));
  EXPECT_EQ(drain_order(queue), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(RetryPolicyTest, SmallestFirstBreaksTiesByWaitThenKey) {
  RetryQueue queue(0, 0, QueuePolicy::kSmallestFirst);
  ASSERT_TRUE(queue.push(pending(9, 4, 5.0)));  // same size, later enqueue
  ASSERT_TRUE(queue.push(pending(4, 4, 2.0)));
  ASSERT_TRUE(queue.push(pending(7, 4, 2.0)));  // ties 4 on time: key wins
  EXPECT_EQ(drain_order(queue), (std::vector<std::uint32_t>{4, 7, 9}));
}

TEST(RetryPolicyTest, LargestWaitFirstRefinesFifoWithKeyTieBreak) {
  RetryQueue queue(0, 0, QueuePolicy::kLargestWaitFirst);
  // Same-instant rejections pushed in reverse key order: FIFO would keep
  // 5, 2, 8; largest-wait-first canonicalizes the tie on key.
  ASSERT_TRUE(queue.push(pending(5, 3, 4.0)));
  ASSERT_TRUE(queue.push(pending(2, 3, 4.0)));
  ASSERT_TRUE(queue.push(pending(8, 3, 4.0)));
  ASSERT_TRUE(queue.push(pending(1, 3, 9.0)));  // shorter wait drains last
  EXPECT_EQ(drain_order(queue), (std::vector<std::uint32_t>{2, 5, 8, 1}));
}

TEST(RetryPolicyTest, AdmissionsAndCapsStillApplyUnderPolicies) {
  RetryQueue queue(2, 0, QueuePolicy::kSmallestFirst);
  ASSERT_TRUE(queue.push(pending(1, 6, 1.0)));
  ASSERT_TRUE(queue.push(pending(2, 2, 1.0)));
  // First drain admits the small tenant, leaves the big one (attempt 1).
  auto result = queue.drain(
      [](const PendingTenant& t) { return t.venv.guest_count() <= 3; });
  ASSERT_EQ(result.admitted.size(), 1u);
  EXPECT_EQ(result.admitted[0].key, 2u);
  EXPECT_TRUE(result.dropped.empty());
  EXPECT_EQ(queue.size(), 1u);
  // Second rejection exhausts max_attempts = 2: the big tenant drops.
  result = queue.drain([](const PendingTenant&) { return false; });
  ASSERT_EQ(result.dropped.size(), 1u);
  EXPECT_EQ(result.dropped[0].key, 1u);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
