// Self-tests for hmn-lint v2: the whole-repo passes (include-graph
// layering, repo-wide enum registry), the function-body rules
// (txn-discipline, hot-path-alloc, exhaustive-switch), the lexer edge
// cases they depend on (raw-string prefixes, CRLF continuations), the
// relaxed tool profile, and the version-2 baseline ratchet — capped by a
// two-pass scan of the real repository that must come back clean with the
// module DAG acyclic.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "functions.h"
#include "layers.h"
#include "lexer.h"
#include "report.h"
#include "rules.h"

namespace fs = std::filesystem;
using hmn::lint::Finding;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> analyze_fixture(const std::string& rel) {
  const fs::path path = fs::path(HMN_LINT_FIXTURES) / rel;
  return hmn::lint::analyze_source(rel, read_file(path),
                                   hmn::lint::classify_path(rel));
}

std::size_t count_rule(const std::vector<Finding>& all, const std::string& rule,
                       bool want_suppressed = false) {
  std::size_t n = 0;
  for (const Finding& f : all) {
    if (f.rule == rule && f.suppressed == want_suppressed) ++n;
  }
  return n;
}

bool has_finding(const std::vector<Finding>& all, const std::string& rule,
                 std::size_t line) {
  return std::any_of(all.begin(), all.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line && !f.suppressed;
  });
}

std::size_t unsuppressed_count(const std::vector<Finding>& all) {
  std::size_t n = 0;
  for (const Finding& f : all) {
    if (!f.suppressed) ++n;
  }
  return n;
}

// ---- lexer edge cases ----------------------------------------------------

TEST(LexerV2, RawStringEncodingPrefixes) {
  const auto r = hmn::lint::lex(
      "auto a = u8R\"(x == y)\"; auto b = LR\"sep(p != q)sep\";\n"
      "auto c = uR\"(1 < 2)\"; auto d = UR\"(3 > 4)\"; int z = 1;\n");
  for (const auto& t : r.tokens) {
    if (t.kind == hmn::lint::TokenKind::kPunct) {
      EXPECT_NE(t.text, "==") << "prefixing must not desync the raw string";
      EXPECT_NE(t.text, "!=");
    }
    // The prefix belongs to the string token, not a preceding identifier.
    EXPECT_NE(t.text, "u8");
    EXPECT_NE(t.text, "LR");
  }
  // The trailing declaration still tokenizes: the stream recovered.
  ASSERT_GE(r.tokens.size(), 4u);
  EXPECT_EQ(r.tokens[r.tokens.size() - 4].text, "z");
}

TEST(LexerV2, CrlfLineContinuationsFold) {
  const auto r =
      hmn::lint::lex("#define PAIR(a, b) \\\r\n  ((a) == (b))\r\nint x;\n");
  ASSERT_FALSE(r.tokens.empty());
  EXPECT_EQ(r.tokens[0].kind, hmn::lint::TokenKind::kPreprocessor);
  // The folded macro body must not leak == as a code token.
  EXPECT_EQ(r.tokens[1].text, "int");
}

TEST(LexerV2, MalformedRawStringDoesNotSwallowFile) {
  // A lone R" with a newline before any '(' is malformed source; the
  // delimiter scan must stop at the line end instead of consuming the rest
  // of the file in search of the opener.
  const auto r = hmn::lint::lex("auto bad = R\"\nint marker;\n");
  bool saw_marker = false;
  for (const auto& t : r.tokens) {
    if (t.text == "marker") saw_marker = true;
  }
  EXPECT_TRUE(saw_marker);
}

// ---- function scanner & enum registry ------------------------------------

TEST(FunctionScanner, FindsBodiesAndAttachesHotAnnotations) {
  const auto lexed = hmn::lint::lex(
      "int plain(int a) { return a; }\n"
      "// hmn-lint: hot-path\n"
      "double annotated(const int* xs,\n"
      "                 int n) {\n"
      "  double s = 0;\n"
      "  for (int i = 0; i < n; ++i) s += xs[i];\n"
      "  return s;\n"
      "}\n");
  const auto fns = hmn::lint::scan_functions(lexed);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "plain");
  EXPECT_FALSE(fns[0].hot_path);
  EXPECT_EQ(fns[1].name, "annotated");
  EXPECT_TRUE(fns[1].hot_path);
}

TEST(FunctionScanner, ProseMentionOfMarkerIsNotADirective) {
  EXPECT_EQ(hmn::lint::live_marker_pos("// hmn-lint: hot-path"), 3u);
  EXPECT_EQ(hmn::lint::live_marker_pos("//   hmn-lint: allow(x, y)"), 5u);
  EXPECT_EQ(hmn::lint::live_marker_pos("// use `// hmn-lint: hot-path` here"),
            std::string_view::npos);
  EXPECT_EQ(hmn::lint::live_marker_pos("//   // hmn-lint: allow(r, why)"),
            std::string_view::npos);
}

TEST(EnumRegistry, CollectsAndDropsConflictingNames) {
  const auto a = hmn::lint::collect_enums(hmn::lint::lex(
      "enum class Color : unsigned char { kRed, kGreen = 4, kBlue };\n"
      "enum class Shape { kBox };\n"));
  ASSERT_EQ(a.enums.count("Color"), 1u);
  EXPECT_EQ(a.enums.at("Color"),
            (std::vector<std::string>{"kRed", "kGreen", "kBlue"}));

  // Same spelling, different enumerators, in another "file": ambiguous.
  const auto b = hmn::lint::collect_enums(
      hmn::lint::lex("enum class Color { kCyan, kMagenta };\n"));
  hmn::lint::EnumRegistry merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.enums.count("Color"), 0u);
  EXPECT_EQ(merged.enums.count("Shape"), 1u);
  EXPECT_TRUE(std::find(merged.ambiguous.begin(), merged.ambiguous.end(),
                        "Color") != merged.ambiguous.end());
}

// ---- txn-discipline ------------------------------------------------------

TEST(TxnDiscipline, FlagsEveryLeakyPath) {
  const auto f = analyze_fixture("orchestrator/txn_leak.cpp");
  EXPECT_EQ(count_rule(f, "txn-discipline"), 4u);
  EXPECT_TRUE(has_finding(f, "txn-discipline", 9));   // early return leak
  EXPECT_TRUE(has_finding(f, "txn-discipline", 21));  // trailing return leak
  EXPECT_TRUE(has_finding(f, "txn-discipline", 26));  // txn_begin leak
  EXPECT_TRUE(has_finding(f, "txn-discipline", 32));  // falls off the end
}

TEST(TxnDiscipline, CleanShapesStaySilent) {
  const auto f = analyze_fixture("orchestrator/txn_clean.cpp");
  EXPECT_EQ(count_rule(f, "txn-discipline"), 0u);
  EXPECT_EQ(unsuppressed_count(f), 0u);
}

TEST(TxnDiscipline, SuppressionIsAuditedNotDropped) {
  const auto f = analyze_fixture("orchestrator/txn_suppressed.cpp");
  EXPECT_EQ(count_rule(f, "txn-discipline", /*want_suppressed=*/true), 1u);
  EXPECT_EQ(unsuppressed_count(f), 0u);
}

// ---- hot-path-alloc ------------------------------------------------------

TEST(HotPathAlloc, FlagsAllAllocationClassesInAnnotatedBodyOnly) {
  const auto f = analyze_fixture("core/hot_alloc.cpp");
  EXPECT_EQ(count_rule(f, "hot-path-alloc"), 4u);
  EXPECT_TRUE(has_finding(f, "hot-path-alloc", 11));  // unreserved push_back
  EXPECT_TRUE(has_finding(f, "hot-path-alloc", 13));  // std::map local
  EXPECT_TRUE(has_finding(f, "hot-path-alloc", 14));  // make_unique
  EXPECT_TRUE(has_finding(f, "hot-path-alloc", 15));  // new
  // cold_everything repeats the body without the annotation: silent.
  for (const Finding& x : f) {
    EXPECT_LT(x.line, 19u) << "unannotated twin must not be flagged";
  }
}

TEST(HotPathAlloc, ReservedGrowthAndMultilineSignatureAreClean) {
  const auto f = analyze_fixture("core/hot_clean.cpp");
  EXPECT_EQ(unsuppressed_count(f), 0u);
  // And the multi-line-signature annotation really attached (the fixture
  // would pass trivially if it had not).
  const auto lexed =
      hmn::lint::lex(read_file(fs::path(HMN_LINT_FIXTURES) / "core" /
                               "hot_clean.cpp"));
  const auto fns = hmn::lint::scan_functions(lexed);
  bool multiline_hot = false;
  for (const auto& fn : fns) {
    if (fn.name == "hot_multiline_signature") multiline_hot = fn.hot_path;
  }
  EXPECT_TRUE(multiline_hot);
}

TEST(HotPathAlloc, ColdStartSuppressionIsAudited) {
  const auto f = analyze_fixture("core/hot_suppressed.cpp");
  EXPECT_GE(count_rule(f, "hot-path-alloc", /*want_suppressed=*/true), 1u);
  EXPECT_EQ(unsuppressed_count(f), 0u);
}

// ---- exhaustive-switch ---------------------------------------------------

TEST(ExhaustiveSwitch, FlagsMissingEnumeratorsWithoutDefault) {
  const auto f = analyze_fixture("sim/bad_switch.cpp");
  ASSERT_EQ(count_rule(f, "exhaustive-switch"), 1u);
  for (const Finding& x : f) {
    if (x.rule != "exhaustive-switch") continue;
    EXPECT_NE(x.message.find("kPause"), std::string::npos);
    EXPECT_NE(x.message.find("kResume"), std::string::npos);
  }
}

TEST(ExhaustiveSwitch, FullCoverageOrDefaultIsClean) {
  const auto f = analyze_fixture("sim/clean_switch.cpp");
  EXPECT_EQ(count_rule(f, "exhaustive-switch"), 0u);
  EXPECT_EQ(unsuppressed_count(f), 0u);
}

TEST(ExhaustiveSwitch, CrossFileEnumsResolveThroughRepoContext) {
  hmn::lint::RepoContext repo;
  repo.enums.merge(hmn::lint::collect_enums(hmn::lint::lex(
      "enum class Remote : unsigned char { kOne, kTwo, kThree };\n")));
  const std::string src =
      "int f(Remote r) {\n"
      "  switch (r) {\n"
      "    case Remote::kOne: return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const auto with_ctx = hmn::lint::analyze_source(
      "src/core/user.cpp", src, hmn::lint::classify_path("src/core/user.cpp"),
      &repo);
  EXPECT_EQ(count_rule(with_ctx, "exhaustive-switch"), 1u);
  // Without the repo context the enum is unknown — conservatively silent.
  const auto without_ctx = hmn::lint::analyze_source(
      "src/core/user.cpp", src, hmn::lint::classify_path("src/core/user.cpp"));
  EXPECT_EQ(count_rule(without_ctx, "exhaustive-switch"), 0u);
}

TEST(ExhaustiveSwitch, ChecksRealRepoEnumsAcrossFiles) {
  // The repository's own enums, pulled from their real headers: the lint
  // TokenKind, the churn trace EventKind, and the emulation session Phase.
  hmn::lint::RepoContext repo;
  const fs::path root = HMN_LINT_ROOT;
  for (const char* rel : {"tools/lint/lexer.h", "src/workload/churn.h",
                          "src/emulator/session.h"}) {
    repo.enums.merge(
        hmn::lint::collect_enums(hmn::lint::lex(read_file(root / rel))));
  }
  ASSERT_EQ(repo.enums.enums.count("TokenKind"), 1u);
  ASSERT_EQ(repo.enums.enums.count("EventKind"), 1u);
  ASSERT_EQ(repo.enums.enums.count("Phase"), 1u);

  const std::string src =
      "int f(TokenKind k) {\n"
      "  switch (k) {\n"
      "    case TokenKind::kIdentifier: return 1;\n"
      "    case TokenKind::kNumber: return 2;\n"
      "  }\n"
      "  return 0;\n"
      "}\n"
      "int g(Phase p) {\n"
      "  switch (p) {\n"
      "    case Phase::kDefining: return 1;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n";
  const auto f = hmn::lint::analyze_source(
      "src/core/enum_user.cpp", src,
      hmn::lint::classify_path("src/core/enum_user.cpp"), &repo);
  // The TokenKind switch misses four enumerators; the Phase switch has a
  // default and stays clean.
  ASSERT_EQ(count_rule(f, "exhaustive-switch"), 1u);
  for (const Finding& x : f) {
    if (x.rule != "exhaustive-switch") continue;
    EXPECT_NE(x.message.find("kPreprocessor"), std::string::npos);
  }
}

// ---- relaxed profile -----------------------------------------------------

TEST(Profile, ToolsRunRelaxedButKeepDeterminismAndSwitchRules) {
  const auto f = analyze_fixture("tools/relaxed_tool.cpp");
  EXPECT_EQ(count_rule(f, "raw-random"), 0u);
  EXPECT_EQ(count_rule(f, "float-eq"), 0u);
  EXPECT_EQ(count_rule(f, "raw-output"), 0u);
  EXPECT_EQ(count_rule(f, "unordered-iter"), 1u);
  EXPECT_EQ(count_rule(f, "exhaustive-switch"), 1u);
}

// ---- include-graph layering ----------------------------------------------

TEST(Layering, ModuleMapAndLayersAreDeclared) {
  EXPECT_EQ(hmn::lint::module_of_path("src/core/hosting.cpp"), "core");
  EXPECT_EQ(hmn::lint::module_of_path("expfw/runner.h"), "expfw");
  EXPECT_EQ(hmn::lint::module_of_path("tools/lint/rules.cpp"), std::nullopt);
  EXPECT_EQ(hmn::lint::layer_of_module("util"), 0);
  EXPECT_EQ(hmn::lint::layer_of_module("core"), 1);
  EXPECT_EQ(hmn::lint::layer_of_module("io"), 2);
  EXPECT_EQ(hmn::lint::layer_of_module("orchestrator"), 3);
  EXPECT_EQ(hmn::lint::layer_of_module("nonexistent"), std::nullopt);
}

TEST(Layering, UpwardEdgeIsAFinding) {
  hmn::lint::IncludeGraph g;
  g.add_file("src/core/bad.cpp", {{"expfw/runner.h", 4}, {"util/rng.h", 5}});
  const auto f = g.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-layering");
  EXPECT_EQ(f[0].file, "src/core/bad.cpp");
  EXPECT_EQ(f[0].line, 4u);
  EXPECT_NE(f[0].message.find("expfw"), std::string::npos);
}

TEST(Layering, SameLayerCycleIsAFinding) {
  hmn::lint::IncludeGraph g;
  g.add_file("src/model/a.h", {{"topology/t.h", 1}});
  g.add_file("src/topology/t.h", {{"model/a.h", 1}});
  const auto f = g.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-layering");
  EXPECT_NE(f[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(f[0].message.find("model"), std::string::npos);
  EXPECT_NE(f[0].message.find("topology"), std::string::npos);
}

TEST(Layering, AcyclicDownwardGraphIsCleanAndRendersDot) {
  hmn::lint::IncludeGraph g;
  g.add_file("src/core/a.cpp", {{"model/m.h", 2}, {"util/u.h", 3}});
  g.add_file("src/model/m.h", {{"graph/g.h", 1}});
  EXPECT_TRUE(g.check().empty());
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("core"), std::string::npos);
  EXPECT_NE(dot.find("\"core\" -> \"model\""), std::string::npos);
}

TEST(Layering, FixtureCanaryScansDirty) {
  const fs::path p =
      fs::path(HMN_LINT_FIXTURES) / "layering" / "src" / "core" /
      "bad_upward.cpp";
  hmn::lint::IncludeGraph g;
  g.add_file("layering/src/core/bad_upward.cpp",
             hmn::lint::collect_includes(hmn::lint::lex(read_file(p))));
  const auto f = g.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-layering");
  EXPECT_EQ(f[0].line, 4u);
}

// ---- baseline v2 / ratchet -----------------------------------------------

TEST(BaselineV2, RoundTripsSuppressedPairsAndCoversThem) {
  Finding live;
  live.file = "src/a.cpp";
  live.rule = "float-eq";
  live.message = "raw == on double";
  Finding sup;
  sup.file = "src/b.cpp";
  sup.rule = "unordered-iter";
  sup.message = "iteration over hash order";
  sup.suppressed = true;
  sup.suppression_reason = "lookup only";

  const std::string doc = hmn::lint::write_baseline({live, sup});
  hmn::lint::Baseline loaded;
  ASSERT_TRUE(hmn::lint::load_baseline(doc, loaded));
  ASSERT_EQ(loaded.keys.size(), 1u);
  ASSERT_EQ(loaded.suppressed_pairs.size(), 1u);
  EXPECT_TRUE(loaded.covers_suppressed(sup));
  Finding drifted = sup;
  drifted.file = "src/c.cpp";  // a suppression in a new file: not audited
  EXPECT_FALSE(loaded.covers_suppressed(drifted));
  EXPECT_TRUE(loaded.absorb(live));
  EXPECT_FALSE(loaded.absorb(live)) << "each key absorbs exactly once";
}

TEST(BaselineV2, Version1DocumentsStillLoad) {
  const std::string v1 =
      "{\"entries\": [\n"
      "  {\"file\": \"src/x.cpp\", \"rule\": \"raw-random\", "
      "\"message\": \"rand()\"}\n"
      "]}\n";
  hmn::lint::Baseline loaded;
  ASSERT_TRUE(hmn::lint::load_baseline(v1, loaded));
  EXPECT_EQ(loaded.keys.size(), 1u);
  EXPECT_TRUE(loaded.suppressed_pairs.empty());
}

// ---- the capstone: the real repository, two-pass --------------------------

TEST(RepoScanV2, WholeRepoIsCleanAndModuleDagIsAcyclic) {
  const fs::path root = HMN_LINT_ROOT;
  std::vector<fs::path> files;
  for (const char* top : {"src", "tools", "bench", "examples"}) {
    for (const auto& entry :
         fs::recursive_directory_iterator(root / top)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".h") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 150u);

  // Pass 1: whole-repo view.
  std::vector<std::string> sources;
  std::vector<std::string> rels;
  sources.reserve(files.size());
  rels.reserve(files.size());
  hmn::lint::IncludeGraph graph;
  hmn::lint::RepoContext repo;
  for (const fs::path& p : files) {
    sources.push_back(read_file(p));
    rels.push_back(fs::relative(p, root).generic_string());
    const auto lexed = hmn::lint::lex(sources.back());
    graph.add_file(rels.back(), hmn::lint::collect_includes(lexed));
    repo.enums.merge(hmn::lint::collect_enums(lexed));
  }
  EXPECT_EQ(graph.file_count(), files.size());

  // Pass 2: per-file rules with context, plus the layering pass.
  std::size_t dirty_files = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto findings = hmn::lint::analyze_source(
        rels[i], sources[i], hmn::lint::classify_path(rels[i]), &repo);
    const std::size_t live = unsuppressed_count(findings);
    if (live != 0) {
      ++dirty_files;
      for (const Finding& f : findings) {
        if (!f.suppressed) {
          ADD_FAILURE() << f.file << ':' << f.line << ": " << f.rule << ": "
                        << f.message;
        }
      }
    }
  }
  EXPECT_EQ(dirty_files, 0u);

  // The declared module DAG must be real: no upward edges, no cycles.
  const auto layering = graph.check();
  for (const Finding& f : layering) {
    ADD_FAILURE() << f.file << ':' << f.line << ": " << f.message;
  }
  EXPECT_TRUE(layering.empty());

  // And the DOT artifact renders every declared layer.
  const std::string dot = graph.to_dot();
  for (const char* module : {"util", "graph", "core", "model", "io",
                             "orchestrator", "emulator", "expfw", "sim"}) {
    EXPECT_NE(dot.find("\"" + std::string(module) + "\""), std::string::npos)
        << module;
  }
}

}  // namespace
