// Fixture: every raw-random shape outside src/util.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned nondeterministic_seed() {
  std::random_device rd;                           // finding
  std::mt19937 gen(rd());                          // finding
  std::srand(static_cast<unsigned>(time(nullptr)));  // two findings
  const int r = rand();                            // finding
  const auto now = std::chrono::system_clock::now();  // finding
  (void)now;
  return gen() + static_cast<unsigned>(r);
}

struct Sampler {
  int rand_calls = 0;
  int rand() { return ++rand_calls; }  // declaring rand(): finding (by design)
};

int member_ok(Sampler& s) { return s.rand(); }  // member call: no finding
