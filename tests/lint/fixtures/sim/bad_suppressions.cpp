// Fixture: suppression misuse — each annotation below is itself a finding.
// hmn-lint: allow(no-such-rule, whatever)
int a = 1;

// hmn-lint: allow(float-eq)
bool missing_reason(double x) { return x == 0.25; }

// hmn-lint: allow(raw-output, nothing on this line ever prints)
int unused_suppression = 2;

// hmn-lint: this marker has no allow clause
int b = 3;
