// Clean switches: full enumerator coverage, or an explicit default.
enum class Signal : unsigned char { kStart, kStop, kPause, kResume };
enum class Mode { kFast = 1, kSafe = 2 };

int full_coverage(Signal s) {
  switch (s) {
    case Signal::kStart: return 1;
    case Signal::kStop: return 2;
    case Signal::kPause: return 3;
    case Signal::kResume: return 4;
  }
  return 0;
}

int with_default(Signal s) {
  switch (s) {
    case Signal::kStart: return 1;
    default: return 0;
  }
}

int initialized_enumerators(Mode m) {
  switch (m) {
    case Mode::kFast: return 1;
    case Mode::kSafe: return 2;
  }
  return 0;
}

int not_an_enum_switch(int v) {
  switch (v) {
    case 1: return 1;
    case 2: return 2;
  }
  return 0;
}
