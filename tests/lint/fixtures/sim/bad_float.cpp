// Fixture: raw floating-point equality shapes.
bool literal_rhs(double x) { return x == 0.5; }     // finding
bool literal_lhs(double x) { return 1.0 != x; }     // finding

bool tracked_var(double tol) {
  double accum = tol * 2.0;
  return accum == tol;  // finding (both operands tracked doubles)
}

bool pointer_guard(const double* p) {
  return p == nullptr;  // no finding: nullptr wins over the name heuristic
}

bool int_compare(int a, int b) { return a == b; }  // no finding

bool suppressed_sentinel(double w) {
  // hmn-lint: allow(float-eq, exact sentinel; never computed)
  return w == 0.0;  // suppressed
}
