// Known-bad fixture for exhaustive-switch: a switch over a local enum
// class that misses enumerators and has no default.
enum class Signal : unsigned char { kStart, kStop, kPause, kResume };

int dispatch(Signal s) {
  switch (s) {
    case Signal::kStart: return 1;
    case Signal::kStop: return 2;
  }
  return 0;
}
