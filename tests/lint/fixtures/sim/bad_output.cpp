// Fixture: raw output in library code.
#include <cstdio>
#include <iostream>

void noisy(int n) {
  std::cout << "n = " << n << '\n';  // finding
  printf("n = %d\n", n);             // finding
  std::puts("done");                 // finding
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", n);  // no finding: buffer format
  (void)buf;
}
