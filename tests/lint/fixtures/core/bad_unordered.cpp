// Fixture: every unordered-iter shape the linter must catch in a
// decision-affecting module (the `core/` path segment opts this file in).
// Not compiled — consumed by lint_tests as analyzer input.
#include <string>
#include <unordered_map>
#include <unordered_set>

using Index = std::unordered_map<int, double>;  // alias decl (finding)

struct State {
  std::unordered_map<int, std::string> names;  // member decl (finding)
};

int count_all(const State& s) {
  int n = 0;
  for (const auto& [key, value] : s.names) {  // range-for (finding)
    n += static_cast<int>(value.size()) + key;
  }
  std::unordered_set<int> seen;  // local decl (finding)
  auto it = seen.begin();        // iterator traversal (finding)
  (void)it;
  Index idx;  // alias-typed decl (finding)
  for (auto b = std::begin(idx); b != std::end(idx); ++b) {  // (finding)
    n += b->first;
  }
  return n;
}
