// Known-bad fixture for hot-path-alloc: every allocation class the rule
// recognizes, inside an annotated function.
#include <map>
#include <memory>
#include <vector>

// hmn-lint: hot-path
void hot_everything(std::vector<int>& sink) {
  std::vector<int> grown;
  for (int i = 0; i < 64; ++i) {
    grown.push_back(i);  // unreserved local: reallocation mid-loop
  }
  std::map<int, int> lookup;  // node-based container construction
  auto owned = std::make_unique<int>(7);
  int* raw = new int(9);
  sink.push_back(*raw + *owned + lookup[0] + grown[0]);
}

void cold_everything(std::vector<int>& sink) {
  // Identical body, no annotation: the rule must stay silent.
  std::vector<int> grown;
  for (int i = 0; i < 64; ++i) {
    grown.push_back(i);
  }
  std::map<int, int> lookup;
  int* raw = new int(9);
  sink.push_back(*raw + lookup[0] + grown[0]);
}
