// Clean hot path: reserved growth, caller-owned buffers, no node
// containers, no naked new.
#include <vector>

// hmn-lint: hot-path
void hot_reserved(const std::vector<int>& in, std::vector<int>& out) {
  std::vector<int> tmp;
  tmp.reserve(in.size());
  for (const int v : in) {
    tmp.push_back(v * 2);  // reserved above: no reallocation
  }
  out.push_back(tmp.empty() ? 0 : tmp.back());  // caller-owned, not a local
}

// Multi-line signature: the annotation still attaches to the function whose
// name follows it.
// hmn-lint: hot-path
double hot_multiline_signature(const std::vector<double>& weights,
                               const std::vector<double>& values,
                               double scale) {
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] * values[i];
  }
  return acc * scale;
}
