// Fixture: correctly suppressed unordered-iter sites — the analyzer must
// report them as suppressed, not clean and not failing.
#include <unordered_map>

double lookup_only(int key) {
  // hmn-lint: allow(unordered-iter, lookup-only cache; never iterated)
  std::unordered_map<int, double> cache;
  cache.emplace(key, 1.0);
  const auto it = cache.find(key);
  return it == cache.end() ? 0.0 : it->second;
}
