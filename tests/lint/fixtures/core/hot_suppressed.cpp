// Cold-start allocation inside a hot-path function, under an audited
// suppression.
#include <vector>

// hmn-lint: hot-path
void hot_with_coldstart(std::vector<int>& out) {
  // hmn-lint: allow(hot-path-alloc, one-time scratch sized on first call and reused thereafter)
  static std::vector<int>* scratch = new std::vector<int>(1024);
  for (std::size_t i = 0; i < scratch->size(); ++i) {
    (*scratch)[i] = static_cast<int>(i);
  }
  out.push_back(scratch->back());
}
