// Clean transaction shapes: every return path commits or rolls back, and
// branch-local commits cover their own paths only (mirrors healer.cpp's
// heal_one).
struct FakeManager;

bool heal_one_clean(FakeManager& mgr, int id, bool precheck) {
  if (precheck) {
    return false;  // early return BEFORE the transaction begins: fine
  }
  auto view = mgr.residual_cluster_excluding(id);
  auto outcome = mgr.map(view);
  if (outcome.ok() && mgr.update_mappings(outcome)) {
    return true;
  }
  mgr.evict_and_park(id);
  return false;
}

bool commit_in_return(FakeManager& mgr, int id) {
  auto view = mgr.residual_cluster_excluding(id);
  return mgr.update_mappings(view);  // commit inside the return statement
}

bool explicit_txn(FakeManager& mgr) {
  mgr.txn_begin();
  if (mgr.poll()) {
    mgr.txn_commit();
    return true;
  }
  mgr.txn_abort();
  return false;
}

void rollback_without_begin(FakeManager& mgr, int id) {
  mgr.release(id);  // release outside a transaction is a plain departure
}
