// Known-bad fixture: a healer-style transaction that leaks on one branch.
// The staged exclusion (residual_cluster_excluding) is never committed or
// rolled back on the early-return path.
struct FakeManager;

bool heal_one_leaky(FakeManager& mgr, int id, bool shortcut) {
  auto view = mgr.residual_cluster_excluding(id);
  if (shortcut) {
    return false;  // leak: neither update_mappings nor release
  }
  if (mgr.update_mappings(view)) {
    return true;
  }
  mgr.release(id);
  return false;
}

bool heal_leaky_return(FakeManager& mgr, int id) {
  auto view = mgr.residual_cluster_excluding(id);
  mgr.inspect(view);
  return true;  // leak: no commit/rollback before returning
}

bool explicit_begin_leak(FakeManager& mgr) {
  mgr.txn_begin();
  return mgr.poll();  // leak: txn_begin without txn_commit/txn_abort
}

void heal_fall_off_end(FakeManager& mgr, int id) {
  auto view = mgr.residual_cluster_excluding(id);
  mgr.inspect(view);
}  // leak: transaction still open at the closing brace
