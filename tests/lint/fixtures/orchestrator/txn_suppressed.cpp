// A transaction leak under an audited suppression: the claim is reviewed,
// the finding is recorded as suppressed, not dropped.
struct FakeManager;

bool drain_for_shutdown(FakeManager& mgr, int id) {
  auto view = mgr.residual_cluster_excluding(id);
  mgr.inspect(view);
  // hmn-lint: allow(txn-discipline, shutdown drain - the process exits and the manager is discarded)
  return true;
}
