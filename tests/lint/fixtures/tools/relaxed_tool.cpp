// Relaxed-profile fixture (tools/): printing, randomness, and float
// comparisons are a tool's business — but unordered iteration and switch
// exhaustiveness still hold.
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

enum class ToolMode : unsigned char { kList, kCheck, kFix };

int run_tool(ToolMode mode) {
  std::printf("seed: %d\n", std::rand());  // fine under the relaxed profile
  double x = 0.5;
  if (x == 0.5) std::printf("exact\n");  // fine under the relaxed profile

  std::unordered_map<int, int> counts;
  counts[1] = 2;
  for (const auto& [k, v] : counts) {  // still flagged: order-dependent
    std::printf("%d=%d\n", k, v);
  }

  switch (mode) {  // still flagged: kFix missing, no default
    case ToolMode::kList: return 0;
    case ToolMode::kCheck: return 1;
  }
  return 2;
}
