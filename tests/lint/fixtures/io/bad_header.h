// Fixture: header without #pragma once and with a namespace-scope
// `using namespace` — both header-hygiene findings.
#include <string>

using namespace std;  // finding

namespace fixture {
using namespace std::literals;  // finding (namespace scope)

inline string greet() { return "hi"; }

}  // namespace fixture
