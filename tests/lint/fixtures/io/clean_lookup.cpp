// Fixture: lookup-only unordered use outside a decision-affecting module —
// must produce zero findings without any suppression.
#include <unordered_set>

bool seen_before(int key) {
  static std::unordered_set<int> seen;
  return !seen.insert(key).second;
}

int sum_to(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) total += i;  // classic for: ordered
  return total;
}
