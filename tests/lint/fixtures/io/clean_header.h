// Fixture: hygienic header — pragma once present, `using namespace`
// confined to a function body.  Must lint clean.
#pragma once

#include <string>

namespace fixture {

inline std::string label() {
  using namespace std::string_literals;  // function scope: allowed
  return "ok"s;
}

}  // namespace fixture
