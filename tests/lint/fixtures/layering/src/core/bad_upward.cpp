// Known-bad fixture for include-layering: core (layer 1) reaching upward
// into expfw (layer 3).  The include target does not need to resolve — the
// layering pass classifies by path alone.
#include "expfw/runner.h"
#include "util/rng.h"

void poke() {}
