// Self-tests for hmn-lint: lexer behavior, every rule against its fixture
// (positive, suppressed, and clean variants), suppression hygiene, golden
// output format, baseline round-trips — and the capstone: the repository's
// own src/ tree must scan with zero unsuppressed findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "report.h"
#include "rules.h"

namespace fs = std::filesystem;
using hmn::lint::Finding;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> analyze_fixture(const std::string& rel) {
  const fs::path path = fs::path(HMN_LINT_FIXTURES) / rel;
  return hmn::lint::analyze_source(rel, read_file(path),
                                   hmn::lint::classify_path(rel));
}

std::vector<Finding> unsuppressed(const std::vector<Finding>& all) {
  std::vector<Finding> out;
  for (const Finding& f : all) {
    if (!f.suppressed) out.push_back(f);
  }
  return out;
}

std::size_t count_rule(const std::vector<Finding>& all, const std::string& rule,
                       bool want_suppressed = false) {
  std::size_t n = 0;
  for (const Finding& f : all) {
    if (f.rule == rule && f.suppressed == want_suppressed) ++n;
  }
  return n;
}

bool has_finding(const std::vector<Finding>& all, const std::string& rule,
                 std::size_t line) {
  return std::any_of(all.begin(), all.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// ---- lexer ---------------------------------------------------------------

TEST(Lexer, TokenizesIdentifiersNumbersAndPunct) {
  const auto r = hmn::lint::lex("int x = 42 + 0x1f; double y = 1.5e3;");
  ASSERT_GE(r.tokens.size(), 12u);
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[3].text, "42");
  EXPECT_FALSE(r.tokens[3].is_float);
  const auto& hex = r.tokens[5];
  EXPECT_EQ(hex.text, "0x1f");
  EXPECT_FALSE(hex.is_float) << "hex f-digit must not read as float suffix";
  bool saw_float = false;
  for (const auto& t : r.tokens) {
    if (t.text == "1.5e3") {
      saw_float = true;
      EXPECT_TRUE(t.is_float);
    }
  }
  EXPECT_TRUE(saw_float);
}

TEST(Lexer, FloatSuffixAndDotForms) {
  const auto r = hmn::lint::lex("a = 1f; b = 2.; c = 3'000; d = .5;");
  std::vector<std::pair<std::string, bool>> expect = {
      {"1f", true}, {"2.", true}, {"3'000", false}, {".5", true}};
  for (const auto& [text, is_float] : expect) {
    bool found = false;
    for (const auto& t : r.tokens) {
      if (t.text == text) {
        found = true;
        EXPECT_EQ(t.is_float, is_float) << text;
      }
    }
    EXPECT_TRUE(found) << text;
  }
}

TEST(Lexer, CommentsAreOutOfBand) {
  const auto r = hmn::lint::lex(
      "int a; // trailing == rand()\n"
      "/* block\n   spanning == */\n"
      "int b;\n");
  ASSERT_EQ(r.comments.size(), 2u);
  EXPECT_FALSE(r.comments[0].own_line);
  EXPECT_TRUE(r.comments[1].own_line);
  for (const auto& t : r.tokens) {
    EXPECT_NE(t.text, "==") << "operators inside comments must not tokenize";
    EXPECT_NE(t.text, "rand");
  }
}

TEST(Lexer, StringsAndRawStringsSwallowOperators) {
  const auto r = hmn::lint::lex(
      "auto s = \"a == b\"; auto t = R\"(x != y)\"; char c = '=';");
  for (const auto& t : r.tokens) {
    if (t.kind == hmn::lint::TokenKind::kPunct) {
      EXPECT_NE(t.text, "==");
      EXPECT_NE(t.text, "!=");
    }
  }
}

TEST(Lexer, PreprocessorDirectivesFoldContinuations) {
  const auto r = hmn::lint::lex("#define MAX(a, b) \\\n  ((a) > (b))\nint x;");
  ASSERT_FALSE(r.tokens.empty());
  EXPECT_EQ(r.tokens[0].kind, hmn::lint::TokenKind::kPreprocessor);
  EXPECT_NE(r.tokens[0].text.find("MAX"), std::string_view::npos);
  // The folded body must not leak > as a code token.
  EXPECT_EQ(r.tokens[1].text, "int");
}

TEST(Lexer, TracksLineNumbers) {
  const auto r = hmn::lint::lex("int a;\nint b;\n  int c;\n");
  ASSERT_GE(r.tokens.size(), 9u);
  EXPECT_EQ(r.tokens[0].line, 1u);
  EXPECT_EQ(r.tokens[3].line, 2u);
  EXPECT_EQ(r.tokens[6].line, 3u);
  EXPECT_EQ(r.tokens[6].col, 3u);
}

// ---- path classification -------------------------------------------------

TEST(Classify, ModulesAndHeaders) {
  auto core = hmn::lint::classify_path("src/core/hosting.cpp");
  EXPECT_TRUE(core.is_decision_module);
  EXPECT_FALSE(core.is_util_module);
  EXPECT_FALSE(core.is_header);

  auto util = hmn::lint::classify_path("src/util/rng.h");
  EXPECT_TRUE(util.is_util_module);
  EXPECT_FALSE(util.is_decision_module);
  EXPECT_TRUE(util.is_header);

  auto io = hmn::lint::classify_path("src/io/trace.cpp");
  EXPECT_FALSE(io.is_decision_module);

  for (const char* m : {"orchestrator", "workload", "topology", "multilevel"}) {
    EXPECT_TRUE(hmn::lint::classify_path(std::string("src/") + m + "/x.cpp")
                    .is_decision_module)
        << m;
  }
}

// ---- R1: unordered-iter --------------------------------------------------

TEST(UnorderedIter, CatchesEveryShapeInDecisionModule) {
  const auto all = analyze_fixture("core/bad_unordered.cpp");
  EXPECT_TRUE(has_finding(all, "unordered-iter", 8)) << "using-alias decl";
  EXPECT_TRUE(has_finding(all, "unordered-iter", 11)) << "member decl";
  EXPECT_TRUE(has_finding(all, "unordered-iter", 16)) << "range-for";
  EXPECT_TRUE(has_finding(all, "unordered-iter", 19)) << "local decl";
  EXPECT_TRUE(has_finding(all, "unordered-iter", 20)) << "member begin()";
  EXPECT_TRUE(has_finding(all, "unordered-iter", 22)) << "alias-typed decl";
  EXPECT_TRUE(has_finding(all, "unordered-iter", 23)) << "std::begin(var)";
  EXPECT_EQ(count_rule(all, "unordered-iter"), 7u);
  EXPECT_TRUE(unsuppressed(all).size() == all.size()) << "nothing suppressed";
}

TEST(UnorderedIter, SuppressionWithReasonIsHonored) {
  const auto all = analyze_fixture("core/suppressed_unordered.cpp");
  EXPECT_EQ(count_rule(all, "unordered-iter", /*want_suppressed=*/true), 1u);
  EXPECT_TRUE(unsuppressed(all).empty());
  for (const Finding& f : all) {
    if (f.suppressed) {
      EXPECT_EQ(f.suppression_reason, "lookup-only cache; never iterated");
    }
  }
}

TEST(UnorderedIter, LookupOnlyOutsideDecisionModulesIsClean) {
  const auto all = analyze_fixture("io/clean_lookup.cpp");
  EXPECT_TRUE(all.empty()) << (all.empty() ? "" : all.front().message);
}

// ---- R2: raw-random ------------------------------------------------------

TEST(RawRandom, CatchesGeneratorsClocksAndSeeds) {
  const auto all = analyze_fixture("sim/bad_random.cpp");
  EXPECT_TRUE(has_finding(all, "raw-random", 8)) << "random_device";
  EXPECT_TRUE(has_finding(all, "raw-random", 9)) << "mt19937";
  EXPECT_TRUE(has_finding(all, "raw-random", 10)) << "srand + time()";
  EXPECT_TRUE(has_finding(all, "raw-random", 11)) << "rand()";
  EXPECT_TRUE(has_finding(all, "raw-random", 12)) << "system_clock";
  EXPECT_TRUE(has_finding(all, "raw-random", 19)) << "declaring rand()";
  // The member *call* s.rand() must not fire.
  EXPECT_FALSE(has_finding(all, "raw-random", 22));
  EXPECT_EQ(count_rule(all, "raw-random"), 7u) << "srand line carries two";
}

TEST(RawRandom, UtilModuleIsExempt) {
  const std::string source = "#include <random>\nstd::mt19937 gen;\n";
  const auto all = hmn::lint::analyze_source("src/util/rng.cpp", source);
  EXPECT_TRUE(all.empty());
  const auto elsewhere = hmn::lint::analyze_source("src/sim/x.cpp", source);
  EXPECT_EQ(count_rule(elsewhere, "raw-random"), 1u);
}

// ---- R3: float-eq --------------------------------------------------------

TEST(FloatEq, LiteralsTrackedVarsAndNullptrEscape) {
  const auto all = analyze_fixture("sim/bad_float.cpp");
  EXPECT_TRUE(has_finding(all, "float-eq", 2)) << "x == 0.5";
  EXPECT_TRUE(has_finding(all, "float-eq", 3)) << "1.0 != x";
  EXPECT_TRUE(has_finding(all, "float-eq", 7)) << "tracked double vars";
  EXPECT_FALSE(has_finding(all, "float-eq", 11)) << "p == nullptr exempt";
  EXPECT_FALSE(has_finding(all, "float-eq", 14)) << "int compare exempt";
  EXPECT_EQ(count_rule(all, "float-eq", /*want_suppressed=*/true), 1u)
      << "sentinel suppression on line 18";
  EXPECT_EQ(count_rule(all, "float-eq"), 3u);
}

// ---- R4: raw-output ------------------------------------------------------

TEST(RawOutput, CatchesStdioButNotBufferFormatting) {
  const auto all = analyze_fixture("sim/bad_output.cpp");
  EXPECT_TRUE(has_finding(all, "raw-output", 6)) << "std::cout";
  EXPECT_TRUE(has_finding(all, "raw-output", 7)) << "printf";
  EXPECT_TRUE(has_finding(all, "raw-output", 8)) << "puts";
  EXPECT_EQ(count_rule(all, "raw-output"), 3u) << "snprintf must not fire";
}

// ---- R5: header-hygiene --------------------------------------------------

TEST(HeaderHygiene, MissingPragmaAndNamespaceScopeUsing) {
  const auto all = analyze_fixture("io/bad_header.h");
  EXPECT_TRUE(has_finding(all, "header-hygiene", 1)) << "missing pragma once";
  EXPECT_TRUE(has_finding(all, "header-hygiene", 5)) << "file-scope using";
  EXPECT_TRUE(has_finding(all, "header-hygiene", 8)) << "namespace-scope using";
  EXPECT_EQ(count_rule(all, "header-hygiene"), 3u);
}

TEST(HeaderHygiene, CleanHeaderPasses) {
  const auto all = analyze_fixture("io/clean_header.h");
  EXPECT_TRUE(all.empty()) << (all.empty() ? "" : all.front().message);
}

TEST(HeaderHygiene, SourceFilesAreExempt) {
  const auto all =
      hmn::lint::analyze_source("src/sim/x.cpp", "using namespace std;\n");
  EXPECT_TRUE(all.empty());
}

// ---- suppression hygiene -------------------------------------------------

TEST(Suppressions, BadAndUnusedAnnotationsAreFindings) {
  const auto all = analyze_fixture("sim/bad_suppressions.cpp");
  EXPECT_TRUE(has_finding(all, "bad-suppression", 2)) << "unknown rule";
  EXPECT_TRUE(has_finding(all, "bad-suppression", 5)) << "missing reason";
  EXPECT_TRUE(has_finding(all, "float-eq", 6))
      << "reason-less suppression must not actually suppress";
  EXPECT_TRUE(has_finding(all, "unused-suppression", 8)) << "stale allow";
  EXPECT_TRUE(has_finding(all, "bad-suppression", 11)) << "marker, no allow";
}

TEST(Suppressions, TrailingCommentCoversItsOwnLine) {
  const auto all = hmn::lint::analyze_source(
      "src/sim/x.cpp",
      "bool f(double x) { return x == 0.0; }  "
      "// hmn-lint: allow(float-eq, exact sentinel)\n");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
}

TEST(Suppressions, OwnLineCommentCoversNextCodeLine) {
  const auto all = hmn::lint::analyze_source(
      "src/sim/x.cpp",
      "// hmn-lint: allow(float-eq, exact sentinel)\n"
      "bool f(double x) { return x == 0.0; }\n");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
}

TEST(Suppressions, DoesNotLeakPastItsLine) {
  const auto all = hmn::lint::analyze_source(
      "src/sim/x.cpp",
      "// hmn-lint: allow(float-eq, exact sentinel)\n"
      "bool f(double x) { return x == 0.0; }\n"
      "bool g(double x) { return x == 1.0; }\n");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(all[0].suppressed);
  EXPECT_FALSE(all[1].suppressed);
}

// ---- output formats ------------------------------------------------------

TEST(Output, GoldenTextFormat) {
  const auto all = hmn::lint::analyze_source(
      "src/sim/x.cpp", "bool f(double x) { return x == 0.5; }\n");
  ASSERT_EQ(all.size(), 1u);
  std::ostringstream out;
  hmn::lint::print_text(out, all, /*show_suppressed=*/false);
  EXPECT_EQ(out.str(),
            "src/sim/x.cpp:1:29: float-eq: raw floating-point '==' — "
            "compare against a tolerance, or suppress with why exact "
            "equality is sound here\n");
}

TEST(Output, JsonReportShapeAndEscaping) {
  Finding f;
  f.file = "a\"b.cpp";
  f.line = 3;
  f.col = 7;
  f.rule = "float-eq";
  f.message = "line1\nline2";
  const std::string json = hmn::lint::to_json({f});
  EXPECT_NE(json.find("\"file\": \"a\\\"b.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 1"), std::string::npos);
}

TEST(Output, BaselineRoundTripAbsorbsExactlyOnce) {
  const auto all = analyze_fixture("sim/bad_float.cpp");
  const auto live = unsuppressed(all);
  ASSERT_FALSE(live.empty());
  const std::string doc = hmn::lint::write_baseline(all);
  hmn::lint::Baseline baseline;
  ASSERT_TRUE(hmn::lint::load_baseline(doc, baseline));
  EXPECT_EQ(baseline.keys.size(), live.size());
  for (const Finding& f : live) {
    EXPECT_TRUE(baseline.absorb(f)) << f.message;
  }
  // Fully consumed: a second identical finding is NOT grandfathered.
  EXPECT_FALSE(baseline.absorb(live.front()));
}

TEST(Output, MalformedBaselineIsRejected) {
  hmn::lint::Baseline baseline;
  EXPECT_FALSE(hmn::lint::load_baseline("{\"entries\": [", baseline));
  EXPECT_FALSE(hmn::lint::load_baseline("not json", baseline));
  EXPECT_TRUE(hmn::lint::load_baseline("{\"entries\": []}\n", baseline));
  EXPECT_TRUE(baseline.keys.empty());
}

// ---- the capstone: the repo itself ---------------------------------------

TEST(RepoScan, SrcTreeHasZeroUnsuppressedFindings) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(HMN_LINT_SRC)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".h") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 100u) << "src/ walk looks wrong";
  std::size_t suppressed = 0;
  for (const fs::path& p : files) {
    const auto all = hmn::lint::analyze_source(p.generic_string(),
                                               read_file(p));
    for (const Finding& f : all) {
      EXPECT_TRUE(f.suppressed)
          << p.generic_string() << ":" << f.line << ": " << f.rule << ": "
          << f.message;
      if (f.suppressed) ++suppressed;
    }
  }
  // The sweep documented every intentional exception; losing them all in
  // one edit would mean the scanner broke, not that the tree got cleaner.
  EXPECT_GE(suppressed, 10u);
}

}  // namespace
