// Performance regression guards: generous wall-clock ceilings on the
// paper's largest instances.  These bounds are ~20x the measured times on
// a single-core container, so they only trip on an accidental complexity
// regression (e.g. losing A*Prune's dominance pruning turns the largest
// torus instance from ~0.1 s into minutes).
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "util/timer.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;

TEST(PerformanceGuard, LargestTorusInstanceUnderTwoSeconds) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 11);
  const workload::Scenario sc{50.0, 0.01, workload::WorkloadKind::kLowLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 12);
  ASSERT_EQ(venv.guest_count(), 2000u);

  const util::Timer timer;
  const auto out = core::HmnMapper().map(cluster, venv, 13);
  const double seconds = timer.elapsed_seconds();
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_LT(seconds, 2.0) << "HMN took " << seconds
                          << " s on the 2000-guest torus instance — "
                             "complexity regression?";
}

TEST(PerformanceGuard, SwitchedClusterStaysSubSecond) {
  // The paper highlights sub-second switched-cluster mapping as an
  // important practical result; hold the library to it.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 11);
  const workload::Scenario sc{50.0, 0.01, workload::WorkloadKind::kLowLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 12);

  const util::Timer timer;
  const auto out = core::HmnMapper().map(cluster, venv, 13);
  const double seconds = timer.elapsed_seconds();
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_LT(seconds, 1.0);
}

TEST(PerformanceGuard, HostingAloneIsFast) {
  // Hosting's repeated re-sorting is O(n log n) per assignment; the 2000-
  // guest instance must stay comfortably interactive.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 11);
  const workload::Scenario sc{50.0, 0.01, workload::WorkloadKind::kLowLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 12);
  core::ResidualState state(cluster);
  const util::Timer timer;
  const auto hosted = core::run_hosting(venv, state);
  ASSERT_TRUE(hosted.ok);
  EXPECT_LT(timer.elapsed_seconds(), 0.5);
}

}  // namespace
