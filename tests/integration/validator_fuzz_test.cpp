// Adversarial validator tests: start from a known-valid mapping and apply
// targeted mutations; the independent validator must flag each one (and
// never flag the unmutated original).  This is the guard that keeps every
// other test honest — if the validator were lenient, the whole
// property-test suite would prove nothing.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/validator.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using core::ConstraintId;
using core::Mapping;
using core::validate_mapping;

struct Instance {
  model::PhysicalCluster cluster;
  model::VirtualEnvironment venv;
  Mapping mapping;
};

Instance mapped_instance(std::uint64_t seed) {
  Instance inst;
  inst.cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, seed);
  const workload::Scenario sc{5.0, 0.02, workload::WorkloadKind::kHighLevel};
  inst.venv = workload::make_scenario_venv(sc, inst.cluster, seed + 1);
  auto out = core::HmnMapper().map(inst.cluster, inst.venv, seed);
  EXPECT_TRUE(out.ok());
  inst.mapping = std::move(*out.mapping);
  return inst;
}

bool flags(const Instance& inst, ConstraintId id) {
  const auto report = validate_mapping(inst.cluster, inst.venv, inst.mapping);
  for (const auto& v : report.violations) {
    if (v.constraint == id) return true;
  }
  return false;
}

class ValidatorFuzz : public testing::TestWithParam<int> {};

TEST_P(ValidatorFuzz, OriginalIsValid) {
  const auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  EXPECT_TRUE(validate_mapping(inst.cluster, inst.venv, inst.mapping).ok());
}

TEST_P(ValidatorFuzz, UnmappingAGuestFlagsEq1) {
  auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  inst.mapping.guest_host[rng.index(inst.venv.guest_count())] =
      NodeId::invalid();
  EXPECT_TRUE(flags(inst, ConstraintId::kGuestMappedOnce));
}

TEST_P(ValidatorFuzz, MovingGuestWithoutReroutingFlagsPaths) {
  auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  // Move a guest that has at least one inter-host link to a different
  // host; its old paths no longer start at its host.
  for (int attempt = 0; attempt < 200; ++attempt) {
    const auto g = GuestId{static_cast<GuestId::underlying_type>(
        rng.index(inst.venv.guest_count()))};
    bool has_routed_link = false;
    for (const VirtLinkId l : inst.venv.links_of(g)) {
      if (!inst.mapping.link_paths[l.index()].empty()) has_routed_link = true;
    }
    if (!has_routed_link) continue;
    const NodeId old_host = inst.mapping.guest_host[g.index()];
    const auto& hosts = inst.cluster.hosts();
    NodeId new_host = hosts[rng.index(hosts.size())];
    while (new_host == old_host) new_host = hosts[rng.index(hosts.size())];
    inst.mapping.guest_host[g.index()] = new_host;
    break;
  }
  const auto report =
      validate_mapping(inst.cluster, inst.venv, inst.mapping);
  EXPECT_FALSE(report.ok());
}

TEST_P(ValidatorFuzz, TruncatingAPathFlagsChainOrEndpoints) {
  auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  // Find a multi-edge path and drop its last edge.
  for (auto& path : inst.mapping.link_paths) {
    if (path.size() >= 2) {
      path.pop_back();
      break;
    }
  }
  const auto report =
      validate_mapping(inst.cluster, inst.venv, inst.mapping);
  EXPECT_FALSE(report.ok());
}

TEST_P(ValidatorFuzz, OverloadingAHostFlagsMemory) {
  auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  // Cram every guest onto host 0 (keeping paths as-is: multiple violations
  // expected, memory among them).
  for (auto& h : inst.mapping.guest_host) h = inst.cluster.hosts()[0];
  EXPECT_TRUE(flags(inst, ConstraintId::kMemoryCapacity));
}

TEST_P(ValidatorFuzz, InflatedDemandFlagsBandwidth) {
  auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  // Rebuild the venv with every link demanding more than the physical
  // 1 Gbps; the old paths overload every edge they use.
  model::VirtualEnvironment heavy;
  for (std::size_t g = 0; g < inst.venv.guest_count(); ++g) {
    heavy.add_guest(
        inst.venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}));
  }
  for (std::size_t l = 0; l < inst.venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    const auto ep = inst.venv.endpoints(id);
    auto demand = inst.venv.link(id);
    demand.bandwidth_mbps = 1500.0;
    heavy.add_link(ep.src, ep.dst, demand);
  }
  inst.venv = std::move(heavy);
  EXPECT_TRUE(flags(inst, ConstraintId::kBandwidthCapacity));
}

TEST_P(ValidatorFuzz, TightenedLatencyFlagsEq8) {
  auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  // Shrink every latency bound below one physical hop (5 ms): every
  // routed (non-empty) path violates Eq. 8.
  bool any_routed = false;
  for (const auto& path : inst.mapping.link_paths) {
    any_routed |= !path.empty();
  }
  ASSERT_TRUE(any_routed);
  model::VirtualEnvironment tight;
  for (std::size_t g = 0; g < inst.venv.guest_count(); ++g) {
    tight.add_guest(
        inst.venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}));
  }
  for (std::size_t l = 0; l < inst.venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    const auto ep = inst.venv.endpoints(id);
    auto demand = inst.venv.link(id);
    demand.max_latency_ms = 1.0;
    tight.add_link(ep.src, ep.dst, demand);
  }
  inst.venv = std::move(tight);
  EXPECT_TRUE(flags(inst, ConstraintId::kLatencyBound));
}

TEST_P(ValidatorFuzz, RandomPathShuffleCaughtUnlessStillSimple) {
  auto inst = mapped_instance(static_cast<std::uint64_t>(GetParam()));
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1300);
  // Replace one routed path's edges with random edges: overwhelmingly
  // likely to break chaining; if the random edges happen to form a valid
  // alternative route, the validator accepting it is correct.
  for (auto& path : inst.mapping.link_paths) {
    if (path.empty()) continue;
    for (auto& e : path) {
      e = EdgeId{static_cast<EdgeId::underlying_type>(
          rng.index(inst.cluster.link_count()))};
    }
    break;
  }
  const auto report =
      validate_mapping(inst.cluster, inst.venv, inst.mapping);
  // Either rejected, or it really is a valid re-route: verify by re-running
  // the validator on a copy — i.e. just assert determinism here.
  const auto report2 =
      validate_mapping(inst.cluster, inst.venv, inst.mapping);
  EXPECT_EQ(report.ok(), report2.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorFuzz, testing::Range(201, 206));

}  // namespace
