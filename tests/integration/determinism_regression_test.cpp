// Regression guard for the hmn-lint sweep (R1/unordered-iter): the
// orchestrator's headline guarantee is byte-identical decision logs across
// runs, which silently breaks the moment any decision path iterates a hash
// container.  These tests diff two independently constructed seeded runs —
// through the failure/healing path, where most per-tenant bookkeeping maps
// live — so a reintroduced unordered iteration fails here even if the
// linter itself is bypassed.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/trace.h"
#include "orchestrator/orchestrator.h"
#include "topology/topologies.h"
#include "workload/churn.h"
#include "workload/scenario.h"

namespace {

using hmn::orchestrator::EventDecision;
using hmn::orchestrator::Orchestrator;
using hmn::orchestrator::OrchestratorReport;

hmn::workload::ChurnTrace churn_with_failures(
    const hmn::model::PhysicalCluster& cluster, std::uint64_t seed) {
  hmn::workload::ChurnOptions opts;
  opts.arrival_rate = 0.5;
  opts.horizon = 80.0;
  opts.mean_lifetime = 18.0;
  opts.min_guests = 4;
  opts.max_guests = 9;
  opts.density = 0.2;
  opts.profile = hmn::workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1280.0};
  opts.grow_probability = 0.2;
  hmn::workload::ChurnTrace trace = hmn::workload::generate_churn(opts, seed);

  hmn::workload::FailureOptions fopts;
  fopts.horizon = 80.0;
  fopts.host_mttf = 120.0;
  fopts.host_mttr = 6.0;
  fopts.link_mttf = 90.0;
  fopts.link_mttr = 4.0;
  hmn::workload::merge_events(
      trace, hmn::workload::generate_failures(fopts, cluster, seed ^ 0x5eed));
  return trace;
}

/// Everything replayable about a run, serialized: the decision signature
/// (time/kind/tenant/decision/error/placement-hash per event) plus the
/// utilization timeline and healing counters.  Latencies are wall-clock and
/// deliberately excluded.
std::string run_fingerprint(const OrchestratorReport& report) {
  std::ostringstream out;
  out << report.decision_signature() << '#';
  for (const auto& s : report.timeline) {
    out << s.time << ',' << s.mem_fraction << ',' << s.lbf << ','
        << s.live_tenants << ',' << s.queued << ';';
  }
  out << '#' << report.healed << '|' << report.degraded << '|'
      << report.restored << '|' << report.parked << '|' << report.readmitted
      << '|' << report.heal_dropped << '|' << report.tenant_minutes_lost
      << '|' << report.degraded_minutes;
  return out.str();
}

TEST(DeterminismRegression, SeededRunsWithFailuresAreByteIdentical) {
  const auto cluster = hmn::workload::make_paper_cluster(
      hmn::workload::ClusterKind::kSwitched, 11);
  const auto trace = churn_with_failures(cluster, 0xD15EA5Eu);
  ASSERT_GT(trace.events.size(), 40u);

  Orchestrator first(cluster, trace.profile);
  Orchestrator second(cluster, trace.profile);
  const std::string fp_first = run_fingerprint(first.run(trace));
  const std::string fp_second = run_fingerprint(second.run(trace));
  EXPECT_EQ(fp_first, fp_second);

  // The run must actually exercise the healing path, or this guard guards
  // nothing: require at least one failure-driven decision.
  EXPECT_GT(first.report().host_failures + first.report().link_failures, 0u);
  EXPECT_TRUE(first.report().invariant_violations.empty());
}

TEST(DeterminismRegression, ReplayThroughTraceFormatMatchesLiveRun) {
  const auto cluster = hmn::workload::make_paper_cluster(
      hmn::workload::ClusterKind::kSwitched, 11);
  const auto trace = churn_with_failures(cluster, 20260806u);

  Orchestrator live(cluster, trace.profile);
  const std::string fp_live = run_fingerprint(live.run(trace));

  const auto reloaded =
      hmn::io::read_trace_or_throw(hmn::io::write_trace(trace));
  Orchestrator replayed(cluster, reloaded.profile);
  EXPECT_EQ(run_fingerprint(replayed.run(reloaded)), fp_live);
}

/// A blast-laden trace over a racked fabric: correlated switch failures
/// (Weibull up-times) layered on churn, with availability-aware admission
/// exercised end to end.
hmn::workload::ChurnTrace churn_with_blasts(
    const hmn::model::PhysicalCluster& cluster, std::uint64_t seed) {
  hmn::workload::ChurnOptions opts;
  opts.arrival_rate = 0.6;
  opts.horizon = 70.0;
  opts.mean_lifetime = 15.0;
  opts.profile = hmn::workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1024.0};
  hmn::workload::ChurnTrace trace = hmn::workload::generate_churn(opts, seed);

  hmn::workload::FailureOptions fopts;
  fopts.horizon = 70.0;
  fopts.blast_mttf = 30.0;
  fopts.blast_mttr = 5.0;
  fopts.mttf_dist = hmn::workload::MttfDistribution::kWeibull;
  trace.mttf_dist = fopts.mttf_dist;
  hmn::workload::merge_events(
      trace, hmn::workload::generate_failures(fopts, cluster, seed ^ 0xb1a57));
  return trace;
}

TEST(DeterminismRegression, CorrelatedBlastRunsAreByteIdentical) {
  // The grouped-healing path (one transactional batch per blast, single
  // audit) plus the availability tracker and biased admission all sit on
  // the decision path here; any unordered iteration in them diffs the
  // fingerprint.
  const auto cluster = hmn::model::PhysicalCluster::build(
      hmn::topology::switch_tree(24, 6, 4),
      std::vector<hmn::model::HostCapacity>(24, {1000, 4096, 4096}),
      hmn::model::LinkProps{1000.0, 5.0});
  const auto trace = churn_with_blasts(cluster, 0xb1a57ed5u);

  hmn::orchestrator::OrchestratorOptions opts;
  opts.availability_aware = true;
  opts.spare_headroom = 0.1;
  Orchestrator first(cluster, trace.profile, opts);
  Orchestrator second(cluster, trace.profile, opts);
  const std::string fp_first = run_fingerprint(first.run(trace));
  EXPECT_EQ(fp_first, run_fingerprint(second.run(trace)));

  EXPECT_GT(first.report().blast_failures, 0u);
  EXPECT_TRUE(first.report().invariant_violations.empty());

  // And the v3 record/replay loop reproduces the live decisions: blast
  // group lists, the MTTF tag, and the profile all survive serialization.
  const auto reloaded =
      hmn::io::read_trace_or_throw(hmn::io::write_trace(trace));
  ASSERT_EQ(reloaded.mttf_dist, hmn::workload::MttfDistribution::kWeibull);
  Orchestrator replayed(cluster, reloaded.profile, opts);
  EXPECT_EQ(run_fingerprint(replayed.run(reloaded)), fp_first);
}

TEST(DeterminismRegression, TraceGenerationItselfIsByteStable) {
  const auto cluster = hmn::workload::make_paper_cluster(
      hmn::workload::ClusterKind::kSwitched, 7);
  // Two independent generator invocations, same seed: the serialized JSONL
  // must be byte-identical — any unordered iteration inside generation or
  // serialization shows up as a diff here.
  const std::string a =
      hmn::io::write_trace(churn_with_failures(cluster, 42));
  const std::string b =
      hmn::io::write_trace(churn_with_failures(cluster, 42));
  EXPECT_EQ(a, b);
  const std::string c =
      hmn::io::write_trace(churn_with_failures(cluster, 43));
  EXPECT_NE(a, c) << "different seeds must actually differ";
}

}  // namespace
