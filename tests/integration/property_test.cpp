// Cross-module property suite: every mapper in the library, on randomized
// instances spanning topologies and workloads, must either fail with a
// typed error or produce a mapping that satisfies every formal constraint
// (Eqs. 1-9) under the independent validator — plus mapper-specific
// invariants (objective consistency, stage accounting).
#include <gtest/gtest.h>

#include <memory>

#include "topology/topologies.h"
#include "baselines/composite_mappers.h"
#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "extensions/greedy_rank_mapper.h"
#include "extensions/min_hosts_mapper.h"
#include "workload/host_generator.h"
#include "workload/scenario.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;

enum class MapperKind { kHmn, kHmnNoMigration, kR, kRA, kHS, kMinHosts, kGreedyRank };

const char* kind_name(MapperKind k) {
  switch (k) {
    case MapperKind::kHmn: return "HMN";
    case MapperKind::kHmnNoMigration: return "HN";
    case MapperKind::kR: return "R";
    case MapperKind::kRA: return "RA";
    case MapperKind::kHS: return "HS";
    case MapperKind::kMinHosts: return "MinHosts";
    case MapperKind::kGreedyRank: return "GreedyRank";
  }
  return "?";
}

core::MapperPtr make_mapper(MapperKind k) {
  baselines::BaselineOptions opts;
  opts.max_tries = 30;
  switch (k) {
    case MapperKind::kHmn:
      return std::make_unique<core::HmnMapper>();
    case MapperKind::kHmnNoMigration: {
      core::HmnOptions h;
      h.enable_migration = false;
      return std::make_unique<core::HmnMapper>(h);
    }
    case MapperKind::kR:
      return std::make_unique<baselines::RandomDfsMapper>(opts);
    case MapperKind::kRA:
      return std::make_unique<baselines::RandomAStarMapper>(opts);
    case MapperKind::kHS:
      return std::make_unique<baselines::HostingSearchMapper>(opts);
    case MapperKind::kMinHosts:
      return std::make_unique<extensions::MinHostsMapper>();
    case MapperKind::kGreedyRank:
      return std::make_unique<extensions::GreedyRankMapper>();
  }
  return nullptr;
}

enum class TopoKind { kTorus, kSwitched, kRing, kHypercube, kRandom };

topology::Topology make_topology(TopoKind k, util::Rng& rng) {
  switch (k) {
    case TopoKind::kTorus: return topology::torus_2d(4, 4);
    case TopoKind::kSwitched: return topology::switched(16, 8);
    case TopoKind::kRing: return topology::ring(16);
    case TopoKind::kHypercube: return topology::hypercube(4);
    case TopoKind::kRandom: return topology::random_cluster(16, 0.25, rng);
  }
  return {};
}

const char* topo_name(TopoKind k) {
  switch (k) {
    case TopoKind::kTorus: return "torus";
    case TopoKind::kSwitched: return "switched";
    case TopoKind::kRing: return "ring";
    case TopoKind::kHypercube: return "hypercube";
    case TopoKind::kRandom: return "random";
  }
  return "?";
}

using Param = std::tuple<MapperKind, TopoKind, int>;

class MapperValidity : public testing::TestWithParam<Param> {};

TEST_P(MapperValidity, OutcomeIsValidOrTypedFailure) {
  const auto [mapper_kind, topo_kind, seed_int] = GetParam();
  const auto seed = static_cast<std::uint64_t>(seed_int);
  util::Rng rng(util::derive_seed(777, seed));

  auto topo = make_topology(topo_kind, rng);
  const std::size_t hosts = topo.host_count();
  auto caps = workload::generate_hosts(
      hosts, workload::paper_host_profile(), rng);
  const auto cluster = model::PhysicalCluster::build(
      std::move(topo), std::move(caps), workload::paper_link_props());

  workload::VenvGenOptions vopts;
  vopts.guest_count = hosts * (1 + rng.index(6));  // 1:1 to 6:1
  vopts.density = rng.uniform(0.01, 0.1);
  vopts.profile = rng.chance(0.5) ? workload::high_level_profile()
                                  : workload::low_level_profile();
  vopts.normalize_to = &cluster;
  const auto venv = workload::generate_venv(vopts, rng);

  const auto mapper = make_mapper(mapper_kind);
  const auto out = mapper->map(cluster, venv, seed);

  if (!out.ok()) {
    // Failure must be typed and explained; partial results absent.
    EXPECT_NE(out.error, core::MapErrorCode::kNone)
        << kind_name(mapper_kind) << " on " << topo_name(topo_kind);
    EXPECT_FALSE(out.detail.empty());
    return;
  }

  // Validity under the independent checker.
  const auto report = core::validate_mapping(cluster, venv, *out.mapping);
  ASSERT_TRUE(report.ok())
      << kind_name(mapper_kind) << " on " << topo_name(topo_kind) << " seed "
      << seed << ":\n"
      << report.summary();

  // Structural invariants.
  EXPECT_EQ(out.mapping->guest_host.size(), venv.guest_count());
  EXPECT_EQ(out.mapping->link_paths.size(), venv.link_count());
  EXPECT_EQ(out.stats.links_routed,
            out.mapping->inter_host_link_count(venv));
  EXPECT_GE(core::load_balance_factor(cluster, venv, *out.mapping), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapperValidity,
    testing::Combine(testing::Values(MapperKind::kHmn,
                                     MapperKind::kHmnNoMigration,
                                     MapperKind::kR, MapperKind::kRA,
                                     MapperKind::kHS, MapperKind::kMinHosts,
                                     MapperKind::kGreedyRank),
                     testing::Values(TopoKind::kTorus, TopoKind::kSwitched,
                                     TopoKind::kRing, TopoKind::kHypercube,
                                     TopoKind::kRandom),
                     testing::Range(1, 4)),
    [](const testing::TestParamInfo<Param>& param_info) {
      return std::string(kind_name(std::get<0>(param_info.param))) + "_" +
             topo_name(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

// The A*Prune-based mappers must succeed on every paper scenario instance
// that the generator normalizes for feasibility (the paper's near-zero
// failure counts for HMN and RA).
class PaperScenarioSolvability
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PaperScenarioSolvability, HmnAndRaSolveNormalizedInstances) {
  const auto [scenario_idx, cluster_kind] = GetParam();
  const auto scenarios = workload::paper_scenarios();
  const auto& scenario = scenarios[static_cast<std::size_t>(scenario_idx)];
  const auto kind = cluster_kind == 0 ? workload::ClusterKind::kTorus2D
                                      : workload::ClusterKind::kSwitched;
  const auto cluster = workload::make_paper_cluster(kind, 4040);
  const auto venv = workload::make_scenario_venv(scenario, cluster, 5050);

  const core::HmnMapper hmn_mapper;
  const auto out = hmn_mapper.map(cluster, venv, 1);
  ASSERT_TRUE(out.ok()) << scenario.label() << ": " << out.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());

  baselines::BaselineOptions opts;
  opts.max_tries = 50;
  const baselines::RandomAStarMapper ra(opts);
  const auto out_ra = ra.map(cluster, venv, 2);
  ASSERT_TRUE(out_ra.ok()) << scenario.label() << ": " << out_ra.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out_ra.mapping).ok());
}

INSTANTIATE_TEST_SUITE_P(AllRows, PaperScenarioSolvability,
                         testing::Combine(testing::Range(0, 16),
                                          testing::Range(0, 2)));

}  // namespace
