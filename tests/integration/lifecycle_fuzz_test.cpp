// Lifecycle fuzzing: random operation sequences against the emulator
// frontend, with full invariant validation after every step.
//
//   * EmulationSession: interleaved grow / map / deploy / run /
//     inject_host_failure — the mapping must satisfy Eqs. 1-9 whenever one
//     exists, and a repaired mapping must avoid the failed host.
//   * TenancyManager: random admit / release — aggregate per-host memory,
//     storage, and per-link bandwidth across active tenants must never
//     exceed the real cluster's capacities.
#include <gtest/gtest.h>

#include <map>

#include "core/repair.h"
#include "core/validator.h"
#include "emulator/session.h"
#include "emulator/tenancy.h"
#include "util/rng.h"
#include "workload/scenario.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;

class SessionFuzz : public testing::TestWithParam<int> {};

TEST_P(SessionFuzz, RandomOperationSequencesKeepInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng rng(util::derive_seed(31337, seed));
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, seed);
  emulator::EmulationSession session(cluster, {.seed = seed});

  // Seed environment: a small connected core.
  std::vector<GuestId> guests;
  guests.push_back(session.add_guest({75, 192, 150}));
  for (int i = 0; i < 30; ++i) {
    const GuestId g = session.add_guest(
        {rng.uniform(50, 100), rng.uniform(128, 256), rng.uniform(100, 200)});
    session.add_link(g, guests[rng.index(guests.size())],
                     {rng.uniform(0.5, 1.0), rng.uniform(30, 60)});
    guests.push_back(g);
  }
  ASSERT_TRUE(session.map()) << session.last_error();

  std::vector<NodeId> failed_hosts;
  for (int op = 0; op < 30 && session.phase() != emulator::Phase::kFailed;
       ++op) {
    switch (rng.index(5)) {
      case 0: {  // grow by a few guests
        const std::size_t before = guests.size();
        for (int i = 0; i < 3; ++i) {
          const GuestId g = session.add_guest({rng.uniform(50, 100),
                                               rng.uniform(128, 256),
                                               rng.uniform(100, 200)});
          session.add_link(g, guests[rng.index(before)],
                           {rng.uniform(0.5, 1.0), rng.uniform(30, 60)});
          guests.push_back(g);
        }
        break;
      }
      case 1:
        (void)session.map();
        break;
      case 2:
        (void)session.deploy();
        break;
      case 3:
        (void)session.run();
        break;
      default: {
        // Fail a random host the mapping currently uses (only when mapped,
        // and keep a couple of hosts alive).
        if (!session.has_mapping() ||
            session.phase() == emulator::Phase::kDefining ||
            failed_hosts.size() > 4) {
          break;
        }
        const NodeId victim =
            session.mapping().guest_host[rng.index(guests.size())];
        if (session.inject_host_failure(victim)) {
          failed_hosts.push_back(victim);
        }
        break;
      }
    }
    // Invariants after every operation.
    if (session.has_mapping() &&
        session.phase() != emulator::Phase::kDefining &&
        session.phase() != emulator::Phase::kFailed) {
      const auto report =
          core::validate_mapping(session.cluster(), session.venv(),
                                 session.mapping());
      ASSERT_TRUE(report.ok()) << "op " << op << ": " << report.summary();
      for (const NodeId dead : failed_hosts) {
        ASSERT_TRUE(core::mapping_avoids_node(session.cluster(),
                                              session.mapping(), dead))
            << "op " << op << " uses failed host " << dead.value();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzz, testing::Range(1, 7));

class TenancyFuzz : public testing::TestWithParam<int> {};

TEST_P(TenancyFuzz, AggregateUsageNeverExceedsCapacity) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng rng(util::derive_seed(424242, seed));
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, seed);
  emulator::TenancyManager mgr(cluster);

  std::vector<emulator::TenantId> active;
  for (int op = 0; op < 40; ++op) {
    if (active.empty() || rng.chance(0.6)) {
      workload::VenvGenOptions opts;
      opts.guest_count = 10 + rng.index(40);
      opts.density = 0.1;
      opts.profile = workload::high_level_profile();
      opts.normalize_to = &cluster;
      opts.capacity_fraction = 1.0;
      auto venv = workload::generate_venv(opts, rng);
      const auto result = mgr.admit("t", std::move(venv),
                                    util::derive_seed(seed, static_cast<std::uint64_t>(op)));
      if (result.ok()) active.push_back(*result.tenant);
    } else {
      const std::size_t pick = rng.index(active.size());
      ASSERT_TRUE(mgr.release(active[pick]));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // Aggregate accounting across active tenants, from scratch.
    std::vector<double> mem(cluster.node_count(), 0.0);
    std::vector<double> stor(cluster.node_count(), 0.0);
    std::vector<double> bw(cluster.link_count(), 0.0);
    for (const auto id : active) {
      const auto* tenant = mgr.tenant(id);
      ASSERT_NE(tenant, nullptr);
      for (std::size_t g = 0; g < tenant->venv.guest_count(); ++g) {
        const auto gid = GuestId{static_cast<GuestId::underlying_type>(g)};
        mem[tenant->mapping.guest_host[g].index()] +=
            tenant->venv.guest(gid).mem_mb;
        stor[tenant->mapping.guest_host[g].index()] +=
            tenant->venv.guest(gid).stor_gb;
      }
      for (std::size_t l = 0; l < tenant->venv.link_count(); ++l) {
        const auto lid = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
        for (const EdgeId e : tenant->mapping.link_paths[l]) {
          bw[e.index()] += tenant->venv.link(lid).bandwidth_mbps;
        }
      }
    }
    for (const NodeId h : cluster.hosts()) {
      ASSERT_LE(mem[h.index()], cluster.capacity(h).mem_mb + 1e-6)
          << "op " << op;
      ASSERT_LE(stor[h.index()], cluster.capacity(h).stor_gb + 1e-6);
    }
    for (std::size_t e = 0; e < cluster.link_count(); ++e) {
      const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
      ASSERT_LE(bw[e], cluster.link(id).bandwidth_mbps + 1e-6) << "op " << op;
    }
    EXPECT_EQ(mgr.tenant_count(), active.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TenancyFuzz, testing::Range(1, 7));

}  // namespace
