// Tests for the constrained and naive DFS path searches (the baselines'
// path-mapping algorithms).
#include <gtest/gtest.h>

#include <limits>

#include "graph/dfs_path.h"
#include "topology/topologies.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using graph::DfsOptions;
using graph::Graph;
using graph::dfs_find_path;
using graph::dfs_first_path;

NodeId n(unsigned v) { return NodeId{v}; }

struct TestNet {
  Graph g;
  std::vector<double> bw;
  std::vector<double> lat;

  explicit TestNet(std::size_t nodes) : g(nodes) {}
  void edge(unsigned a, unsigned b, double bandwidth, double latency) {
    g.add_edge(n(a), n(b));
    bw.push_back(bandwidth);
    lat.push_back(latency);
  }
  auto bw_fn() const {
    return [this](EdgeId e) { return bw[e.index()]; };
  }
  auto lat_fn() const {
    return [this](EdgeId e) { return lat[e.index()]; };
  }
};

TEST(DfsFindPath, SameNodeEmptyPath) {
  TestNet net(1);
  const auto p =
      dfs_find_path(net.g, n(0), n(0), 1, 10, net.bw_fn(), net.lat_fn());
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->edges.empty());
}

TEST(DfsFindPath, FindsFeasiblePath) {
  TestNet net(3);
  net.edge(0, 1, 10, 1);
  net.edge(1, 2, 10, 1);
  const auto p =
      dfs_find_path(net.g, n(0), n(2), 5, 10, net.bw_fn(), net.lat_fn());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(p->total_latency, 2.0);
  EXPECT_DOUBLE_EQ(p->bottleneck_bw, 10.0);
}

TEST(DfsFindPath, BacktracksAroundBandwidthHole) {
  TestNet net(4);
  net.edge(0, 1, 1, 1);   // too narrow for demand 5
  net.edge(1, 3, 10, 1);
  net.edge(0, 2, 10, 1);
  net.edge(2, 3, 10, 1);
  const auto p =
      dfs_find_path(net.g, n(0), n(3), 5, 10, net.bw_fn(), net.lat_fn());
  ASSERT_TRUE(p.has_value());
  for (const EdgeId e : p->edges) EXPECT_GE(net.bw[e.index()], 5.0);
}

TEST(DfsFindPath, LatencyPruningForcesShortRoute) {
  TestNet net(4);
  net.edge(0, 1, 10, 6);  // 0-1-3 costs 12 > bound
  net.edge(1, 3, 10, 6);
  net.edge(0, 2, 10, 2);  // 0-2-3 costs 4
  net.edge(2, 3, 10, 2);
  const auto p =
      dfs_find_path(net.g, n(0), n(3), 1, 5, net.bw_fn(), net.lat_fn());
  ASSERT_TRUE(p.has_value());
  EXPECT_LE(p->total_latency, 5.0);
}

TEST(DfsFindPath, InfeasibleReturnsNullopt) {
  TestNet net(2);
  net.edge(0, 1, 1, 1);
  EXPECT_FALSE(dfs_find_path(net.g, n(0), n(1), 5, 10, net.bw_fn(),
                             net.lat_fn()).has_value());
  EXPECT_FALSE(dfs_find_path(net.g, n(0), n(1), 0.5, 0.5, net.bw_fn(),
                             net.lat_fn()).has_value());
}

TEST(DfsFindPath, ExpansionBudgetTruncates) {
  // A long chain: with a 1-expansion budget the search cannot reach the
  // far end.
  TestNet net(10);
  for (unsigned i = 0; i + 1 < 10; ++i) net.edge(i, i + 1, 10, 1);
  DfsOptions opts;
  opts.max_expansions = 1;
  EXPECT_FALSE(dfs_find_path(net.g, n(0), n(9), 1, 100, net.bw_fn(),
                             net.lat_fn(), opts).has_value());
  opts.max_expansions = 0;  // unlimited
  EXPECT_TRUE(dfs_find_path(net.g, n(0), n(9), 1, 100, net.bw_fn(),
                            net.lat_fn(), opts).has_value());
}

TEST(DfsFindPath, RandomizedStillFeasible) {
  hmn::util::Rng rng(7);
  TestNet net(8);
  net.g = topology::random_connected_graph(8, 0.4, rng);
  for (std::size_t e = 0; e < net.g.edge_count(); ++e) {
    net.bw.push_back(rng.uniform(1, 10));
    net.lat.push_back(rng.uniform(0.5, 2));
  }
  DfsOptions opts;
  opts.rng = &rng;
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = dfs_find_path(net.g, n(0), n(7), 0.5, 20.0, net.bw_fn(),
                                 net.lat_fn(), opts);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(graph::path_is_simple(net.g, n(0), n(7), p->edges));
    EXPECT_LE(p->total_latency, 20.0);
    EXPECT_GE(p->bottleneck_bw, 0.5);
  }
}

TEST(DfsFirstPath, FindsAPathIgnoringConstraints) {
  TestNet net(3);
  net.edge(0, 1, 0.1, 100);  // violates nothing during a naive search
  net.edge(1, 2, 0.1, 100);
  const auto p = dfs_first_path(net.g, n(0), n(2), net.bw_fn(), net.lat_fn());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(p->total_latency, 200.0);
  EXPECT_DOUBLE_EQ(p->bottleneck_bw, 0.1);
}

TEST(DfsFirstPath, SameNodeEmpty) {
  TestNet net(1);
  const auto p = dfs_first_path(net.g, n(0), n(0), net.bw_fn(), net.lat_fn());
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->edges.empty());
}

TEST(DfsFirstPath, DisconnectedFails) {
  TestNet net(2);
  EXPECT_FALSE(
      dfs_first_path(net.g, n(0), n(1), net.bw_fn(), net.lat_fn()).has_value());
}

TEST(DfsFirstPath, SimplePathAlways) {
  hmn::util::Rng rng(31);
  TestNet net(12);
  net.g = topology::random_connected_graph(12, 0.3, rng);
  net.bw.assign(net.g.edge_count(), 1.0);
  net.lat.assign(net.g.edge_count(), 1.0);
  DfsOptions opts;
  opts.rng = &rng;
  for (int trial = 0; trial < 50; ++trial) {
    const auto p =
        dfs_first_path(net.g, n(0), n(11), net.bw_fn(), net.lat_fn(), opts);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(graph::path_is_simple(net.g, n(0), n(11), p->edges));
  }
}

TEST(DfsFirstPath, StarTopologyAlwaysTwoHops) {
  // On a star (every wrong host is a dead end), the first path found is the
  // direct 2-hop route — the mechanism that makes the paper's DFS baseline
  // succeed on switched clusters.
  const auto topo = topology::star(10);
  std::vector<double> bw(topo.graph.edge_count(), 1.0);
  std::vector<double> lat(topo.graph.edge_count(), 1.0);
  auto bw_fn = [&](EdgeId e) { return bw[e.index()]; };
  auto lat_fn = [&](EdgeId e) { return lat[e.index()]; };
  hmn::util::Rng rng(5);
  DfsOptions opts;
  opts.rng = &rng;
  for (unsigned a = 0; a < 10; ++a) {
    for (unsigned b = 0; b < 10; ++b) {
      if (a == b) continue;
      const auto p =
          dfs_first_path(topo.graph, n(a), n(b), bw_fn, lat_fn, opts);
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->edges.size(), 2u);
    }
  }
}

TEST(DfsFirstPath, TorusWandersBeyondShortest) {
  // On a torus the naive first path is usually much longer than the
  // shortest path — the mechanism behind the paper's torus failures.
  const auto topo = topology::torus_2d(5, 8);
  std::vector<double> bw(topo.graph.edge_count(), 1.0);
  std::vector<double> lat(topo.graph.edge_count(), 1.0);
  auto bw_fn = [&](EdgeId e) { return bw[e.index()]; };
  auto lat_fn = [&](EdgeId e) { return lat[e.index()]; };
  hmn::util::Rng rng(17);
  DfsOptions opts;
  opts.rng = &rng;
  double total_len = 0.0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    const auto p =
        dfs_first_path(topo.graph, n(0), n(22), bw_fn, lat_fn, opts);
    ASSERT_TRUE(p.has_value());
    total_len += static_cast<double>(p->edges.size());
  }
  // Shortest path 0 -> 22 is a handful of hops; the naive DFS average
  // should be far above it.
  EXPECT_GT(total_len / kTrials, 8.0);
}

}  // namespace
