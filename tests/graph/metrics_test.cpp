// Tests for graph structural metrics.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/metrics.h"
#include "util/rng.h"
#include "topology/topologies.h"

namespace {

using namespace hmn;
using graph::degree_histogram;
using graph::distance_metrics;
using graph::shortest_path_edge_load;

TEST(DistanceMetrics, TrivialGraphs) {
  EXPECT_DOUBLE_EQ(distance_metrics(graph::Graph(0)).diameter, 0.0);
  EXPECT_DOUBLE_EQ(distance_metrics(graph::Graph(1)).diameter, 0.0);
}

TEST(DistanceMetrics, LineDiameter) {
  const auto t = topology::line(5);
  const auto m = distance_metrics(t.graph);
  EXPECT_DOUBLE_EQ(m.diameter, 4.0);
  EXPECT_TRUE(m.connected);
  // Mean distance over ordered pairs of P5: 2 * (4*1+3*2+2*3+1*4) / 20 = 2.
  EXPECT_DOUBLE_EQ(m.average_distance, 2.0);
}

TEST(DistanceMetrics, PaperTorusDiameter) {
  const auto t = topology::torus_2d(8, 5);
  EXPECT_DOUBLE_EQ(distance_metrics(t.graph).diameter, 6.0);
}

TEST(DistanceMetrics, SwitchedClusterDiameter) {
  const auto t = topology::switched(40, 64);
  EXPECT_DOUBLE_EQ(distance_metrics(t.graph).diameter, 2.0);
}

TEST(DistanceMetrics, DisconnectedFlagged) {
  graph::Graph g(3);
  g.add_edge(NodeId{0}, NodeId{1});
  const auto m = distance_metrics(g);
  EXPECT_FALSE(m.connected);
  EXPECT_DOUBLE_EQ(m.diameter, 1.0);  // within the reachable component
}

TEST(EdgeLoad, StarConcentratesOnSpokes) {
  const auto t = topology::star(4);  // 4 hosts + hub
  const auto load = shortest_path_edge_load(t.graph);
  // Every ordered host pair (12) crosses two spokes; plus host<->hub pairs.
  // Each spoke carries: 2 * 3 ordered pairs through it * 1 + 2 (to/from
  // hub) = 8.
  for (const std::size_t l : load) EXPECT_EQ(l, 8u);
}

TEST(EdgeLoad, LineMiddleEdgeHottest) {
  const auto t = topology::line(5);
  const auto load = shortest_path_edge_load(t.graph);
  // Edges in order: (0,1),(1,2),(2,3),(3,4); middle edges carry the most.
  EXPECT_GT(load[1], load[0]);
  EXPECT_GT(load[2], load[3]);
  EXPECT_EQ(load[1], load[2]);
  // Total crossings = sum over ordered pairs of distance = n(n-1) * mean.
  const auto m = distance_metrics(t.graph);
  const double total = std::accumulate(load.begin(), load.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 20.0 * m.average_distance);
}

TEST(ArticulationPoints, LineInteriorNodesAreCuts) {
  const auto t = topology::line(5);
  const auto cuts = graph::articulation_points(t.graph);
  EXPECT_EQ(cuts, (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
}

TEST(ArticulationPoints, RingHasNone) {
  const auto t = topology::ring(6);
  EXPECT_TRUE(graph::articulation_points(t.graph).empty());
}

TEST(ArticulationPoints, TorusHasNone) {
  const auto t = topology::torus_2d(8, 5);
  EXPECT_TRUE(graph::articulation_points(t.graph).empty());
}

TEST(ArticulationPoints, StarHubIsTheOnlyCut) {
  const auto t = topology::star(5);
  const auto cuts = graph::articulation_points(t.graph);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], NodeId{5});  // the switch
}

TEST(ArticulationPoints, SwitchedClusterEverySwitchIsCritical) {
  const auto t = topology::switched(20, 8);  // cascade of several switches
  const auto cuts = graph::articulation_points(t.graph);
  std::size_t switch_cuts = 0;
  for (const NodeId c : cuts) {
    EXPECT_EQ(t.role[c.index()], topology::NodeRole::kSwitch);
    ++switch_cuts;
  }
  EXPECT_EQ(switch_cuts, t.switch_count());
}

TEST(ArticulationPoints, ParallelEdgesDoNotCreateCuts) {
  graph::Graph g(3);
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{1}, NodeId{2});
  g.add_edge(NodeId{1}, NodeId{2});  // doubled: still cut at node 1 only
  const auto cuts = graph::articulation_points(g);
  EXPECT_EQ(cuts, std::vector<NodeId>{NodeId{1}});
}

TEST(ArticulationPoints, MatchesBruteForceComponentCount) {
  // Property check on random graphs: v is a cut vertex iff removing it
  // increases the component count of its component.
  hmn::util::Rng rng(9090);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = topology::random_connected_graph(15, 0.15, rng);
    const auto cuts = graph::articulation_points(g);
    std::set<unsigned> cut_set;
    for (const NodeId c : cuts) cut_set.insert(c.value());
    for (unsigned v = 0; v < 15; ++v) {
      // Rebuild the graph without v.
      graph::Graph reduced(15);
      for (std::size_t e = 0; e < g.edge_count(); ++e) {
        const auto ep = g.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
        if (ep.a.value() == v || ep.b.value() == v) continue;
        reduced.add_edge(ep.a, ep.b);
      }
      // Components excluding the isolated v itself: total minus one.
      const std::size_t comps = reduced.component_count() - 1;
      EXPECT_EQ(cut_set.contains(v), comps > 1)
          << "node " << v << " trial " << trial;
    }
  }
}

TEST(DegreeHistogram, TorusAllDegreeFour) {
  const auto t = topology::torus_2d(4, 4);
  const auto hist = degree_histogram(t.graph);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[4], 16u);
  for (int d = 0; d < 4; ++d) EXPECT_EQ(hist[static_cast<std::size_t>(d)], 0u);
}

TEST(DegreeHistogram, StarShape) {
  const auto t = topology::star(6);
  const auto hist = degree_histogram(t.graph);
  EXPECT_EQ(hist[1], 6u);  // hosts
  EXPECT_EQ(hist[6], 1u);  // hub
}

TEST(DegreeHistogram, EmptyGraph) {
  EXPECT_TRUE(degree_histogram(graph::Graph(0)).empty());
}

}  // namespace
