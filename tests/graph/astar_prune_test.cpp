// Tests for the modified 1-constrained A*Prune (Algorithm 1) and the
// general K-shortest-paths A*Prune, including brute-force cross-checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>

#include "graph/astar_prune.h"
#include "topology/topologies.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using graph::AStarPruneOptions;
using graph::ConstrainedPath;
using graph::Graph;
using graph::astar_prune_bottleneck;
using graph::astar_prune_ksp;

constexpr double kInf = std::numeric_limits<double>::infinity();

NodeId n(unsigned v) { return NodeId{v}; }

struct TestNet {
  Graph g;
  std::vector<double> bw;
  std::vector<double> lat;

  explicit TestNet(std::size_t nodes) : g(nodes) {}
  EdgeId edge(unsigned a, unsigned b, double bandwidth, double latency) {
    const EdgeId e = g.add_edge(n(a), n(b));
    bw.push_back(bandwidth);
    lat.push_back(latency);
    return e;
  }
  auto bw_fn() const {
    return [this](EdgeId e) { return bw[e.index()]; };
  }
  auto lat_fn() const {
    return [this](EdgeId e) { return lat[e.index()]; };
  }
  std::optional<ConstrainedPath> route(unsigned a, unsigned b, double demand,
                                       double max_lat,
                                       AStarPruneOptions opts = {}) const {
    return astar_prune_bottleneck(g, n(a), n(b), demand, max_lat, bw_fn(),
                                  lat_fn(), opts);
  }
};

/// Exhaustive enumeration of simple paths: the ground truth the heuristic
/// search is checked against on small graphs.
struct BruteForce {
  const TestNet& net;
  double demand, max_lat;
  double best_bottleneck = -1.0;
  bool feasible = false;

  void run(NodeId from, NodeId to) {
    std::vector<bool> visited(net.g.node_count(), false);
    visited[from.index()] = true;
    rec(from, to, visited, kInf, 0.0);
  }
  void rec(NodeId u, NodeId to, std::vector<bool>& visited, double bneck,
           double lat_acc) {
    if (u == to) {
      feasible = true;
      best_bottleneck = std::max(best_bottleneck, bneck);
      return;
    }
    for (const auto& adj : net.g.neighbors(u)) {
      if (visited[adj.neighbor.index()]) continue;
      const double b = net.bw[adj.edge.index()];
      const double l = net.lat[adj.edge.index()];
      if (b < demand || lat_acc + l > max_lat) continue;
      visited[adj.neighbor.index()] = true;
      rec(adj.neighbor, to, visited, std::min(bneck, b), lat_acc + l);
      visited[adj.neighbor.index()] = false;
    }
  }
};

TEST(AStarPrune, SameNodeIsEmptyPath) {
  TestNet net(2);
  net.edge(0, 1, 10, 1);
  const auto p = net.route(0, 0, 5, 100);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->edges.empty());
  EXPECT_EQ(p->bottleneck_bw, kInf);
  EXPECT_DOUBLE_EQ(p->total_latency, 0.0);
}

TEST(AStarPrune, DirectEdge) {
  TestNet net(2);
  net.edge(0, 1, 10, 5);
  const auto p = net.route(0, 1, 5, 10);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges.size(), 1u);
  EXPECT_DOUBLE_EQ(p->bottleneck_bw, 10.0);
  EXPECT_DOUBLE_EQ(p->total_latency, 5.0);
}

TEST(AStarPrune, PrefersWiderPathWithinLatency) {
  TestNet net(3);
  net.edge(0, 1, 2, 1);   // narrow direct
  net.edge(0, 2, 10, 1);  // wide detour
  net.edge(2, 1, 10, 1);
  const auto p = net.route(0, 1, 1, 10);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(p->bottleneck_bw, 10.0);
}

TEST(AStarPrune, LatencyForbidsWideDetour) {
  TestNet net(3);
  net.edge(0, 1, 2, 1);    // narrow direct, fast
  net.edge(0, 2, 10, 6);   // wide detour, slow
  net.edge(2, 1, 10, 6);
  const auto p = net.route(0, 1, 1, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges.size(), 1u);
  EXPECT_DOUBLE_EQ(p->bottleneck_bw, 2.0);
}

TEST(AStarPrune, BandwidthDemandPrunesEdges) {
  TestNet net(3);
  net.edge(0, 1, 2, 1);
  net.edge(0, 2, 10, 1);
  net.edge(2, 1, 10, 1);
  // Demand 5 kills the direct edge even though it is latency-optimal.
  const auto p = net.route(0, 1, 5, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges.size(), 2u);
}

TEST(AStarPrune, InfeasibleLatencyFails) {
  TestNet net(2);
  net.edge(0, 1, 10, 20);
  EXPECT_FALSE(net.route(0, 1, 1, 10).has_value());
}

TEST(AStarPrune, InfeasibleBandwidthFails) {
  TestNet net(2);
  net.edge(0, 1, 3, 1);
  EXPECT_FALSE(net.route(0, 1, 5, 100).has_value());
}

TEST(AStarPrune, DisconnectedFails) {
  TestNet net(3);
  net.edge(0, 1, 10, 1);
  EXPECT_FALSE(net.route(0, 2, 1, 100).has_value());
}

TEST(AStarPrune, ExactLatencyBoundAccepted) {
  TestNet net(3);
  net.edge(0, 1, 10, 5);
  net.edge(1, 2, 10, 5);
  EXPECT_TRUE(net.route(0, 2, 1, 10).has_value());
  EXPECT_FALSE(net.route(0, 2, 1, 9.999).has_value());
}

TEST(AStarPrune, ExactBandwidthDemandAccepted) {
  TestNet net(2);
  net.edge(0, 1, 5, 1);
  EXPECT_TRUE(net.route(0, 1, 5.0, 10).has_value());
}

TEST(AStarPrune, ResultIsSimplePath) {
  TestNet net(4);
  net.edge(0, 1, 10, 1);
  net.edge(1, 2, 10, 1);
  net.edge(2, 3, 10, 1);
  net.edge(0, 2, 1, 1);
  net.edge(1, 3, 1, 1);
  const auto p = net.route(0, 3, 5, 10);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(graph::path_is_simple(net.g, n(0), n(3), p->edges));
}

TEST(AStarPrune, PrecomputedLatencyBoundMatchesInternal) {
  TestNet net(4);
  net.edge(0, 1, 10, 1);
  net.edge(1, 2, 8, 2);
  net.edge(2, 3, 6, 3);
  net.edge(0, 3, 4, 7);
  const auto internal = net.route(0, 3, 1, 7);
  const auto ar = graph::dijkstra(net.g, n(3), net.lat_fn()).dist;
  AStarPruneOptions opts;
  opts.lat_to_dest = &ar;
  const auto external = net.route(0, 3, 1, 7, opts);
  ASSERT_TRUE(internal.has_value());
  ASSERT_TRUE(external.has_value());
  EXPECT_EQ(internal->edges, external->edges);
}

// ---- Property sweeps against brute force on random graphs.

struct SweepParam {
  std::uint64_t seed;
  bool prune_dominated;
};

class AStarPruneVsBruteForce
    : public testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(AStarPruneVsBruteForce, FindsMaxBottleneckFeasiblePath) {
  const auto [seed, prune] = GetParam();
  hmn::util::Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  TestNet net(10);
  net.g = topology::random_connected_graph(10, 0.3, rng);
  for (std::size_t e = 0; e < net.g.edge_count(); ++e) {
    net.bw.push_back(rng.uniform(1.0, 10.0));
    net.lat.push_back(rng.uniform(0.5, 3.0));
  }

  AStarPruneOptions opts;
  opts.prune_dominated = prune;
  for (unsigned from = 0; from < 10; ++from) {
    for (unsigned to = 0; to < 10; ++to) {
      if (from == to) continue;
      const double demand = rng.uniform(0.0, 8.0);
      const double max_lat = rng.uniform(1.0, 8.0);
      BruteForce ref{net, demand, max_lat};
      ref.run(n(from), n(to));
      const auto p = net.route(from, to, demand, max_lat, opts);
      ASSERT_EQ(p.has_value(), ref.feasible)
          << from << "->" << to << " demand=" << demand
          << " max_lat=" << max_lat;
      if (p.has_value()) {
        // Optimal bottleneck, and internally consistent metrics.
        EXPECT_NEAR(p->bottleneck_bw, ref.best_bottleneck, 1e-9);
        EXPECT_TRUE(graph::path_is_simple(net.g, n(from), n(to), p->edges));
        double lat = 0.0, bneck = kInf;
        for (const EdgeId e : p->edges) {
          lat += net.lat[e.index()];
          bneck = std::min(bneck, net.bw[e.index()]);
        }
        EXPECT_NEAR(lat, p->total_latency, 1e-9);
        EXPECT_NEAR(bneck, p->bottleneck_bw, 1e-9);
        EXPECT_LE(lat, max_lat + 1e-9);
        EXPECT_GE(bneck, demand - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AStarPruneVsBruteForce,
                         testing::Combine(testing::Range(1, 9),
                                          testing::Bool()));

// Dominance pruning must not change results (exactness of the Pareto
// label store).
TEST(AStarPrune, DominancePruningPreservesOptimum) {
  hmn::util::Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    TestNet net(12);
    net.g = topology::random_connected_graph(12, 0.25, rng);
    for (std::size_t e = 0; e < net.g.edge_count(); ++e) {
      net.bw.push_back(rng.uniform(1.0, 10.0));
      net.lat.push_back(rng.uniform(0.5, 3.0));
    }
    AStarPruneOptions with, without;
    with.prune_dominated = true;
    without.prune_dominated = false;
    const double demand = rng.uniform(0.0, 5.0);
    const double max_lat = rng.uniform(2.0, 9.0);
    const auto a = net.route(0, 11, demand, max_lat, with);
    const auto b = net.route(0, 11, demand, max_lat, without);
    ASSERT_EQ(a.has_value(), b.has_value()) << "trial " << trial;
    if (a.has_value()) {
      EXPECT_NEAR(a->bottleneck_bw, b->bottleneck_bw, 1e-9);
    }
  }
}

// ---- General K-shortest-paths A*Prune.

TEST(AStarPruneKsp, EnumeratesInLengthOrder) {
  TestNet net(4);
  net.edge(0, 1, 1, 1);  // lengths: 0-1-3 = 3, 0-2-3 = 5, 0-1-2-3? no edge
  net.edge(1, 3, 1, 2);
  net.edge(0, 2, 1, 2);
  net.edge(2, 3, 1, 3);
  const auto paths =
      astar_prune_ksp(net.g, n(0), n(3), 5, net.lat_fn(), {});
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].total_latency, 3.0);
  EXPECT_DOUBLE_EQ(paths[1].total_latency, 5.0);
}

TEST(AStarPruneKsp, KZeroEmpty) {
  TestNet net(2);
  net.edge(0, 1, 1, 1);
  EXPECT_TRUE(astar_prune_ksp(net.g, n(0), n(1), 0, net.lat_fn(), {}).empty());
}

TEST(AStarPruneKsp, SameNodeTrivialPath) {
  TestNet net(1);
  const auto paths = astar_prune_ksp(net.g, n(0), n(0), 3, net.lat_fn(), {});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].edges.empty());
}

TEST(AStarPruneKsp, ConstraintPrunesPaths) {
  TestNet net(3);
  net.edge(0, 1, 1, 1);
  net.edge(1, 2, 1, 1);
  net.edge(0, 2, 1, 5);
  // Additive constraint: "cost" of 1 per edge, bounded at 1 -> only the
  // direct (single-edge) path qualifies, despite larger length.
  graph::AdditiveConstraint cost;
  cost.weight.assign(net.g.edge_count(), 1.0);
  cost.bound = 1.0;
  const auto paths =
      astar_prune_ksp(net.g, n(0), n(2), 5, net.lat_fn(), {cost});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].edges.size(), 1u);
}

TEST(AStarPruneKsp, MatchesBruteForceEnumeration) {
  // Property: on random graphs, the K shortest constrained paths match an
  // exhaustive enumeration of all simple paths, sorted by length, after
  // filtering by the additive constraint.
  hmn::util::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    TestNet net(8);
    net.g = topology::random_connected_graph(8, 0.35, rng);
    std::vector<double> cost(net.g.edge_count());
    for (std::size_t e = 0; e < net.g.edge_count(); ++e) {
      net.bw.push_back(1.0);
      net.lat.push_back(rng.uniform(0.5, 3.0));
      cost[e] = rng.uniform(0.1, 2.0);
    }
    graph::AdditiveConstraint constraint{cost, rng.uniform(2.0, 6.0)};

    // Brute force: every simple 0->7 path whose cost fits, lengths sorted.
    std::vector<double> lengths;
    std::vector<bool> visited(8, false);
    auto rec = [&](auto&& self, NodeId u, double len, double acc) -> void {
      if (u == n(7)) {
        lengths.push_back(len);
        return;
      }
      for (const auto& adj : net.g.neighbors(u)) {
        if (visited[adj.neighbor.index()]) continue;
        const double nacc = acc + cost[adj.edge.index()];
        if (nacc > constraint.bound) continue;
        visited[adj.neighbor.index()] = true;
        self(self, adj.neighbor, len + net.lat[adj.edge.index()], nacc);
        visited[adj.neighbor.index()] = false;
      }
    };
    visited[0] = true;
    rec(rec, n(0), 0.0, 0.0);
    std::sort(lengths.begin(), lengths.end());

    const std::size_t k = std::min<std::size_t>(6, lengths.size() + 1);
    const auto paths =
        astar_prune_ksp(net.g, n(0), n(7), k, net.lat_fn(), {constraint});
    ASSERT_EQ(paths.size(), std::min(k, lengths.size())) << "trial " << trial;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_NEAR(paths[i].total_latency, lengths[i], 1e-9)
          << "trial " << trial << " path " << i;
      // Constraint really holds on the returned edges.
      double acc = 0.0;
      for (const EdgeId e : paths[i].edges) acc += cost[e.index()];
      EXPECT_LE(acc, constraint.bound + 1e-9);
    }
  }
}

TEST(AStarPruneKsp, AllPathsSimpleAndSorted) {
  hmn::util::Rng rng(99);
  TestNet net(9);
  net.g = topology::random_connected_graph(9, 0.4, rng);
  for (std::size_t e = 0; e < net.g.edge_count(); ++e) {
    net.bw.push_back(1.0);
    net.lat.push_back(rng.uniform(0.5, 2.0));
  }
  const auto paths =
      astar_prune_ksp(net.g, n(0), n(8), 10, net.lat_fn(), {});
  ASSERT_FALSE(paths.empty());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_TRUE(graph::path_is_simple(net.g, n(0), n(8), paths[i].edges));
    if (i > 0) {
      EXPECT_GE(paths[i].total_latency, paths[i - 1].total_latency);
    }
  }
  // Distinct paths.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].edges, paths[j].edges);
    }
  }
}

}  // namespace
