// Tests for Dijkstra shortest paths and the widest-path variant.
#include <gtest/gtest.h>

#include <limits>

#include "graph/dijkstra.h"
#include "topology/topologies.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using graph::Graph;
using graph::dijkstra;
using graph::extract_path;

constexpr double kInf = std::numeric_limits<double>::infinity();

NodeId n(unsigned v) { return NodeId{v}; }

struct WeightedGraph {
  Graph g;
  std::vector<double> w;

  EdgeId edge(unsigned a, unsigned b, double weight) {
    const EdgeId e = g.add_edge(n(a), n(b));
    w.push_back(weight);
    return e;
  }
  auto weight_fn() const {
    return [this](EdgeId e) { return w[e.index()]; };
  }
};

TEST(Dijkstra, SingleNode) {
  WeightedGraph wg;
  wg.g = Graph(1);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_FALSE(sp.parent_edge[0].valid());
}

TEST(Dijkstra, LinearChainDistances) {
  WeightedGraph wg;
  wg.g = Graph(4);
  wg.edge(0, 1, 1.0);
  wg.edge(1, 2, 2.0);
  wg.edge(2, 3, 3.0);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 6.0);
}

TEST(Dijkstra, PrefersCheaperDetour) {
  WeightedGraph wg;
  wg.g = Graph(3);
  wg.edge(0, 2, 10.0);  // direct but expensive
  wg.edge(0, 1, 1.0);
  wg.edge(1, 2, 1.0);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  const auto path = extract_path(wg.g, sp, n(0), n(2));
  EXPECT_EQ(path.size(), 2u);
}

TEST(Dijkstra, UnreachableIsInfinity) {
  WeightedGraph wg;
  wg.g = Graph(3);
  wg.edge(0, 1, 1.0);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  EXPECT_EQ(sp.dist[2], kInf);
  EXPECT_FALSE(sp.reachable(n(2)));
  EXPECT_TRUE(sp.reachable(n(1)));
}

TEST(Dijkstra, InfiniteWeightSkipsEdge) {
  WeightedGraph wg;
  wg.g = Graph(2);
  wg.edge(0, 1, kInf);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  EXPECT_FALSE(sp.reachable(n(1)));
}

TEST(Dijkstra, ZeroWeightEdges) {
  WeightedGraph wg;
  wg.g = Graph(3);
  wg.edge(0, 1, 0.0);
  wg.edge(1, 2, 0.0);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  EXPECT_DOUBLE_EQ(sp.dist[2], 0.0);
}

TEST(Dijkstra, ParallelEdgesTakeCheapest) {
  WeightedGraph wg;
  wg.g = Graph(2);
  wg.edge(0, 1, 5.0);
  const EdgeId cheap = wg.edge(0, 1, 2.0);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  EXPECT_DOUBLE_EQ(sp.dist[1], 2.0);
  EXPECT_EQ(sp.parent_edge[1], cheap);
}

TEST(Dijkstra, ExtractPathReconstructsChain) {
  WeightedGraph wg;
  wg.g = Graph(5);
  wg.edge(0, 1, 1.0);
  wg.edge(1, 2, 1.0);
  wg.edge(2, 3, 1.0);
  wg.edge(3, 4, 1.0);
  wg.edge(0, 4, 10.0);
  const auto sp = dijkstra(wg.g, n(0), wg.weight_fn());
  const auto path = extract_path(wg.g, sp, n(0), n(4));
  EXPECT_EQ(path.size(), 4u);
  EXPECT_TRUE(graph::path_is_simple(wg.g, n(0), n(4), path));
  const auto empty = extract_path(wg.g, sp, n(0), n(0));
  EXPECT_TRUE(empty.empty());
}

TEST(Dijkstra, TorusDistancesMatchManhattanWithWrap) {
  const auto topo = topology::torus_2d(4, 4);
  auto unit = [](EdgeId) { return 1.0; };
  const auto sp = dijkstra(topo.graph, n(0), unit);
  // Node (r,c) = 4r + c; torus distance = wrap(r) + wrap(c).
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      const double dr = std::min(r, 4 - r);
      const double dc = std::min(c, 4 - c);
      EXPECT_DOUBLE_EQ(sp.dist[4 * r + c], dr + dc) << "node " << 4 * r + c;
    }
  }
}

TEST(WidestPath, PicksMaxBottleneck) {
  WeightedGraph wg;  // weights double as capacities here
  wg.g = Graph(3);
  wg.edge(0, 2, 1.0);   // direct but narrow
  wg.edge(0, 1, 10.0);
  wg.edge(1, 2, 8.0);
  const auto widths =
      graph::widest_path_capacities(wg.g, n(0), wg.weight_fn());
  EXPECT_DOUBLE_EQ(widths[0], kInf);
  EXPECT_DOUBLE_EQ(widths[1], 10.0);
  EXPECT_DOUBLE_EQ(widths[2], 8.0);  // via node 1, not the 1.0 direct edge
}

TEST(WidestPath, UnreachableIsZero) {
  WeightedGraph wg;
  wg.g = Graph(2);
  const auto widths =
      graph::widest_path_capacities(wg.g, n(0), wg.weight_fn());
  EXPECT_DOUBLE_EQ(widths[1], 0.0);
}

// Property: on random graphs, Dijkstra distances satisfy the triangle
// inequality over every edge (the relaxation fixpoint).
class DijkstraProperty : public testing::TestWithParam<int> {};

TEST_P(DijkstraProperty, RelaxationFixpoint) {
  hmn::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = topology::random_connected_graph(30, 0.2, rng);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.1, 10.0);
  auto weight = [&](EdgeId e) { return w[e.index()]; };
  const auto sp = dijkstra(g, n(0), weight);
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    EXPECT_LE(sp.dist[ep.a.index()], sp.dist[ep.b.index()] + w[e] + 1e-9);
    EXPECT_LE(sp.dist[ep.b.index()], sp.dist[ep.a.index()] + w[e] + 1e-9);
  }
  // Every extracted path's length equals the reported distance.
  for (unsigned v = 1; v < 30; ++v) {
    const auto path = extract_path(g, sp, n(0), n(v));
    double len = 0.0;
    for (const EdgeId e : path) len += w[e.index()];
    EXPECT_NEAR(len, sp.dist[v], 1e-9);
    EXPECT_TRUE(graph::path_is_simple(g, n(0), n(v), path));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty, testing::Range(1, 11));

}  // namespace
