// Property sweeps over the graph container and helpers on random graphs.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "topology/topologies.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using graph::Graph;

class GraphProperty : public testing::TestWithParam<int> {
 protected:
  Graph random_graph(util::Rng& rng, std::size_t n, double density) {
    return topology::random_connected_graph(n, density, rng);
  }
};

TEST_P(GraphProperty, AdjacencyIsSymmetric) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  const Graph g = random_graph(rng, 20, 0.2);
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    const auto node = NodeId{static_cast<NodeId::underlying_type>(v)};
    for (const graph::Adjacency& adj : g.neighbors(node)) {
      // The neighbor must list us back through the same edge.
      bool found = false;
      for (const graph::Adjacency& back : g.neighbors(adj.neighbor)) {
        found |= back.edge == adj.edge && back.neighbor == node;
      }
      EXPECT_TRUE(found) << "edge " << adj.edge.value();
    }
  }
}

TEST_P(GraphProperty, DegreeSumEqualsTwiceEdges) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37);
  const Graph g = random_graph(rng, 25, 0.15);
  std::size_t degree_sum = 0;
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    degree_sum += g.degree(NodeId{static_cast<NodeId::underlying_type>(v)});
  }
  EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

TEST_P(GraphProperty, ComponentCountMatchesUnionFind) {
  // Cross-check the BFS component count against a union-find built from
  // the edge list, on a deliberately disconnected graph.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41);
  Graph g(30);
  for (int e = 0; e < 25; ++e) {
    g.add_edge(NodeId{static_cast<NodeId::underlying_type>(rng.index(30))},
               NodeId{static_cast<NodeId::underlying_type>(rng.index(30))});
  }
  std::vector<std::size_t> parent(30);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    parent[find(ep.a.index())] = find(ep.b.index());
  }
  std::set<std::size_t> roots;
  for (std::size_t v = 0; v < 30; ++v) roots.insert(find(v));
  EXPECT_EQ(g.component_count(), roots.size());
  EXPECT_EQ(g.connected(), roots.size() <= 1);
}

TEST_P(GraphProperty, DijkstraPathsRoundTripThroughHelpers) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 43);
  const Graph g = random_graph(rng, 18, 0.25);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.5, 4.0);
  const auto sp = graph::dijkstra(g, NodeId{0},
                                  [&](EdgeId e) { return w[e.index()]; });
  for (unsigned t = 1; t < 18; ++t) {
    const auto target = NodeId{t};
    const auto path = graph::extract_path(g, sp, NodeId{0}, target);
    // path_nodes starts at the origin and ends at the target...
    const auto nodes = graph::path_nodes(g, NodeId{0}, path);
    EXPECT_EQ(nodes.front(), NodeId{0});
    EXPECT_EQ(nodes.back(), target);
    EXPECT_EQ(nodes.size(), path.size() + 1);
    // ...and the walk is simple.
    EXPECT_TRUE(graph::path_is_simple(g, NodeId{0}, target, path));
    // Node list has no duplicates (simplicity double-check).
    std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphProperty, testing::Range(1, 9));

}  // namespace
