// Tests for the core graph container and path helpers.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "topology/topologies.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using graph::Graph;

NodeId n(unsigned v) { return NodeId{v}; }

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.connected());  // vacuously
  EXPECT_EQ(g.component_count(), 0u);
}

TEST(Graph, AddNodesSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), n(0));
  EXPECT_EQ(g.add_node(), n(1));
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(Graph, PreallocatedNodes) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.add_node(), n(5));
}

TEST(Graph, AddEdgeUpdatesBothAdjacencies) {
  Graph g(3);
  const EdgeId e = g.add_edge(n(0), n(2));
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.neighbors(n(0)).size(), 1u);
  EXPECT_EQ(g.neighbors(n(0))[0].neighbor, n(2));
  EXPECT_EQ(g.neighbors(n(0))[0].edge, e);
  ASSERT_EQ(g.neighbors(n(2)).size(), 1u);
  EXPECT_EQ(g.neighbors(n(2))[0].neighbor, n(0));
  EXPECT_TRUE(g.neighbors(n(1)).empty());
}

TEST(Graph, EndpointsAndOther) {
  Graph g(2);
  const EdgeId e = g.add_edge(n(0), n(1));
  const auto ep = g.endpoints(e);
  EXPECT_EQ(ep.a, n(0));
  EXPECT_EQ(ep.b, n(1));
  EXPECT_EQ(ep.other(n(0)), n(1));
  EXPECT_EQ(ep.other(n(1)), n(0));
}

TEST(Graph, FindEdge) {
  Graph g(3);
  const EdgeId e = g.add_edge(n(0), n(1));
  EXPECT_EQ(g.find_edge(n(0), n(1)), e);
  EXPECT_EQ(g.find_edge(n(1), n(0)), e);
  EXPECT_FALSE(g.find_edge(n(0), n(2)).valid());
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  const EdgeId e1 = g.add_edge(n(0), n(1));
  const EdgeId e2 = g.add_edge(n(0), n(1));
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(n(0)), 2u);
}

TEST(Graph, SelfLoopSingleAdjacencyEntry) {
  Graph g(1);
  g.add_edge(n(0), n(0));
  EXPECT_EQ(g.degree(n(0)), 1u);
}

TEST(Graph, ConnectivityAndComponents) {
  Graph g(4);
  g.add_edge(n(0), n(1));
  g.add_edge(n(2), n(3));
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.component_count(), 2u);
  g.add_edge(n(1), n(2));
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.component_count(), 1u);
}

TEST(Graph, DensityComplete) {
  Graph g(4);
  for (unsigned i = 0; i < 4; ++i) {
    for (unsigned j = i + 1; j < 4; ++j) g.add_edge(n(i), n(j));
  }
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
}

TEST(Graph, DensityDegenerate) {
  EXPECT_DOUBLE_EQ(Graph(0).density(), 0.0);
  EXPECT_DOUBLE_EQ(Graph(1).density(), 0.0);
}

TEST(PathHelpers, PathNodesWalksEdges) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(n(0), n(1));
  const EdgeId e12 = g.add_edge(n(1), n(2));
  const EdgeId e23 = g.add_edge(n(2), n(3));
  const auto nodes = graph::path_nodes(g, n(0), {e01, e12, e23});
  EXPECT_EQ(nodes, (std::vector<NodeId>{n(0), n(1), n(2), n(3)}));
}

TEST(PathHelpers, EmptyPathIsOriginOnly) {
  Graph g(1);
  const auto nodes = graph::path_nodes(g, n(0), {});
  EXPECT_EQ(nodes, std::vector<NodeId>{n(0)});
}

TEST(PathHelpers, SimplePathAccepted) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(n(0), n(1));
  const EdgeId e12 = g.add_edge(n(1), n(2));
  EXPECT_TRUE(graph::path_is_simple(g, n(0), n(2), {e01, e12}));
}

TEST(PathHelpers, WrongDestinationRejected) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(n(0), n(1));
  EXPECT_FALSE(graph::path_is_simple(g, n(0), n(2), {e01}));
}

TEST(PathHelpers, NonChainingRejected) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(n(0), n(1));
  const EdgeId e23 = g.add_edge(n(2), n(3));
  EXPECT_FALSE(graph::path_is_simple(g, n(0), n(3), {e01, e23}));
}

TEST(PathHelpers, LoopRejected) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(n(0), n(1));
  const EdgeId e12 = g.add_edge(n(1), n(2));
  const EdgeId e20 = g.add_edge(n(2), n(0));
  const EdgeId e01b = g.add_edge(n(0), n(1));
  // 0-1-2-0-1: revisits nodes 0 and 1.
  EXPECT_FALSE(graph::path_is_simple(g, n(0), n(1), {e01, e12, e20, e01b}));
}

TEST(PathHelpers, EmptyPathSimpleIffSameNode) {
  Graph g(2);
  EXPECT_TRUE(graph::path_is_simple(g, n(0), n(0), {}));
  EXPECT_FALSE(graph::path_is_simple(g, n(0), n(1), {}));
}

// ---- Property sweep: random connected graphs are what they claim to be.

class RandomGraphProperty : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RandomGraphProperty, ConnectedWithRequestedDensity) {
  const auto [nodes, density] = GetParam();
  hmn::util::Rng rng(static_cast<std::uint64_t>(nodes * 1000) +
                     static_cast<std::uint64_t>(density * 1e4));
  const Graph g = topology::random_connected_graph(
      static_cast<std::size_t>(nodes), density, rng);
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(nodes));
  EXPECT_TRUE(g.connected());
  const double max_edges = nodes * (nodes - 1) / 2.0;
  const double target = density * max_edges;
  const double tree_edges = nodes - 1.0;
  // Density is met exactly when it exceeds the spanning tree's edge count;
  // otherwise the tree is the sparsest connected graph.
  const double expected = std::max(target, tree_edges);
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, 1.0);
  // No duplicate edges or self-loops.
  std::set<std::pair<unsigned, unsigned>> seen;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    auto ep = g.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    const std::pair<unsigned, unsigned> key{std::min(ep.a.value(), ep.b.value()),
                                            std::max(ep.a.value(), ep.b.value())};
    EXPECT_NE(ep.a, ep.b);
    EXPECT_TRUE(seen.insert(key).second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphProperty,
    testing::Combine(testing::Values(2, 10, 40, 100, 400),
                     testing::Values(0.01, 0.015, 0.025, 0.1, 0.5)));

}  // namespace
