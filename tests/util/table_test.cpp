// Tests for the table renderer, CSV writer, and strong ids.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/csv.h"
#include "util/ids.h"
#include "util/table.h"

namespace {

using hmn::util::CsvWriter;
using hmn::util::Table;

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| 1 "), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PadsToWidestCell) {
  Table t({"x"});
  t.add_row({"wide-cell"});
  t.add_row({"y"});
  std::istringstream in(t.to_string());
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, ShortRowsPaddedWithEmptyCells) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("| 1 "), std::string::npos);
}

TEST(Table, SeparatorProducesRule) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("|-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, CsvSkipsSeparators) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, FmtTrimsTrailingZeros) {
  EXPECT_EQ(Table::fmt(2.50, 2), "2.5");
  EXPECT_EQ(Table::fmt(2.00, 2), "2");
  EXPECT_EQ(Table::fmt(0.125, 3), "0.125");
  EXPECT_EQ(Table::fmt(1234.0, 0), "1234");
}

TEST(Table, FmtRounds) {
  EXPECT_EQ(Table::fmt(1.005, 1), "1");
  EXPECT_EQ(Table::fmt(2.46, 1), "2.5");
}

TEST(Csv, WritesRowsAndEscapes) {
  const std::string path = testing::TempDir() + "/hmn_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.row({"plain", "with,comma", "with\"quote"});
    csv.row({CsvWriter::num(1.5)});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5");
  std::remove(path.c_str());
}

TEST(Csv, NumRoundTripsPrecisely) {
  const double v = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(std::stod(CsvWriter::num(v)), v);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<hmn::HostId, hmn::GuestId>);
  static_assert(!std::is_same_v<hmn::NodeId, hmn::EdgeId>);
  SUCCEED();
}

TEST(Ids, DefaultIsInvalid) {
  hmn::NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, hmn::NodeId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  const hmn::GuestId g{42};
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.value(), 42u);
  EXPECT_EQ(g.index(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(hmn::NodeId{1}, hmn::NodeId{2});
  EXPECT_EQ(hmn::NodeId{3}, hmn::NodeId{3});
}

TEST(Ids, Hashable) {
  std::unordered_set<hmn::NodeId> set;
  set.insert(hmn::NodeId{1});
  set.insert(hmn::NodeId{1});
  set.insert(hmn::NodeId{2});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
