// Tests for the statistics helpers, including the exact population-stddev
// semantics the objective function (Eq. 10) relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace hmn::util;

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanSingle) {
  const std::vector<double> xs{7.5};
  EXPECT_DOUBLE_EQ(mean(xs), 7.5);
}

TEST(Stats, PopulationVarianceDividesByN) {
  // Var of {2, 4} about mean 3: ((1)+(1))/2 = 1 (population), 2 (sample).
  const std::vector<double> xs{2.0, 4.0};
  EXPECT_DOUBLE_EQ(variance_population(xs), 1.0);
  EXPECT_DOUBLE_EQ(stddev_population(xs), 1.0);
  EXPECT_DOUBLE_EQ(stddev_sample(xs), std::sqrt(2.0));
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev_population(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev_sample(xs), 0.0);
}

TEST(Stats, StddevSingleElement) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(stddev_population(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev_sample(xs), 0.0);  // n-1 undefined -> 0 by contract
}

TEST(Stats, KnownStddev) {
  // {2,4,4,4,5,5,7,9}: classic example with population stddev exactly 2.
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev_population(xs), 2.0);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{10, 20, 30, 40, 50};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{4, 4, 4};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonMismatchedLengthsIsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{1, 2};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  hmn::util::Rng rng(77);
  std::vector<double> xs(5000), ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform01();
    ys[i] = rng.uniform01();
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
  EXPECT_DOUBLE_EQ(min_value({}), 0.0);
  EXPECT_DOUBLE_EQ(max_value({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Stats, PercentileClampsP) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200), 2.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  hmn::util::Rng rng(13);
  std::vector<double> xs(1000);
  RunningStats rs;
  for (auto& x : xs) {
    x = rng.uniform(-10, 10);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev_population(), stddev_population(xs), 1e-9);
  EXPECT_NEAR(rs.stddev_sample(), stddev_sample(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
}

TEST(RunningStats, EmptyIsZeroes) {
  const RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev_population(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 0.0);
  EXPECT_DOUBLE_EQ(rs.max(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  hmn::util::Rng rng(29);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 1.5);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 700; ++i) {
    const double x = rng.normal(-1.0, 4.0);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance_population(), all.variance_population(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(LatencyHistogram, EmptyIsZeroes) {
  const LatencyHistogram h(1000.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsExactEverywhere) {
  LatencyHistogram h(1000.0, 10);
  h.add(137.5);
  EXPECT_EQ(h.count(), 1u);
  // min/max clamping makes every percentile of one sample exact, even
  // though the sample sits mid-bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0), 137.5);
  EXPECT_DOUBLE_EQ(h.percentile(50), 137.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 137.5);
}

TEST(LatencyHistogram, InterpolatedPercentilesTrackExact) {
  // 1000 uniform samples over [0, 1000) with 100 buckets: histogram
  // percentiles must match the exact ones to within one bucket width.
  hmn::util::Rng rng(99);
  LatencyHistogram h(1000.0, 100);
  std::vector<double> xs(1000);
  for (auto& x : xs) {
    x = rng.uniform(0.0, 1000.0);
    h.add(x);
  }
  const double bucket_width = 1000.0 / 100.0;
  for (const double p : {1.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    EXPECT_NEAR(h.percentile(p), percentile(xs, p), bucket_width)
        << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile(0), min_value(xs));
  EXPECT_DOUBLE_EQ(h.percentile(100), max_value(xs));
}

TEST(LatencyHistogram, OverflowBucketUsesObservedMax) {
  LatencyHistogram h(100.0, 10);
  h.add(50.0);
  h.add(5000.0);  // beyond upper: overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5000.0);
  // Negative samples clamp to zero rather than underflowing a bucket.
  h.add(-3.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
}

TEST(LatencyHistogram, MergeEqualsSequential) {
  hmn::util::Rng rng(7);
  LatencyHistogram a(500.0, 50), b(500.0, 50), all(500.0, 50);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 600.0);  // some overflow
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (const double p : {10.0, 50.0, 95.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p));
  }
  // Merging an empty histogram is a no-op.
  const double p50 = a.percentile(50);
  EXPECT_TRUE(a.merge(LatencyHistogram(500.0, 50)));
  EXPECT_DOUBLE_EQ(a.percentile(50), p50);
}

TEST(LatencyHistogram, MergeRejectsMismatchedLayouts) {
  // Regression: merge used to fold mismatched layouts bucket-by-bucket up
  // to the shorter length, silently producing wrong percentiles.  It must
  // reject any shape difference and leave the target untouched.
  LatencyHistogram target(500.0, 50);
  target.add(100.0);
  target.add(400.0);

  LatencyHistogram different_buckets(500.0, 25);
  different_buckets.add(10.0);
  EXPECT_FALSE(target.merge(different_buckets));

  LatencyHistogram different_upper(1000.0, 50);
  different_upper.add(10.0);
  EXPECT_FALSE(target.merge(different_upper));

  // Target is untouched by either rejected merge.
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), 100.0);
  EXPECT_DOUBLE_EQ(target.max(), 400.0);

  // A matching layout still merges.
  LatencyHistogram matching(500.0, 50);
  matching.add(250.0);
  EXPECT_TRUE(target.merge(matching));
  EXPECT_EQ(target.count(), 3u);
}

TEST(LatencyHistogram, MergeIntoEmptyAdoptsOtherExtremes) {
  // Regression: an empty *this* must take the other side's min/max rather
  // than fold them against its zero-initialized sentinels (which would
  // pin min() to 0 and could report max() below the true maximum).
  LatencyHistogram target(500.0, 50), source(500.0, 50);
  source.add(120.0);
  source.add(340.0);
  EXPECT_TRUE(target.merge(source));
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), 120.0);
  EXPECT_DOUBLE_EQ(target.max(), 340.0);
  EXPECT_DOUBLE_EQ(target.percentile(0.0), 120.0);
  EXPECT_DOUBLE_EQ(target.percentile(100.0), 340.0);

  // And the merged-into histogram keeps behaving for further merges.
  LatencyHistogram low(500.0, 50);
  low.add(5.0);
  EXPECT_TRUE(target.merge(low));
  EXPECT_DOUBLE_EQ(target.min(), 5.0);
  EXPECT_DOUBLE_EQ(target.max(), 340.0);
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

}  // namespace
