// Concurrency tests for ThreadPool and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace {

using hmn::util::ThreadPool;
using hmn::util::parallel_for;

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ThreadCountHonored) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GT(pool.thread_count(), 0u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential order
}

TEST(ParallelFor, ChunkedClaimCoversAll) {
  constexpr std::size_t kN = 1003;  // not a multiple of the chunk size
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 4, 64);
  int total = 0;
  for (auto& v : visits) total += v.load();
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Deterministic per-index computation must aggregate identically at any
  // parallelism level.
  constexpr std::size_t kN = 4096;
  auto run = [&](std::size_t threads) {
    std::vector<double> out(kN);
    parallel_for(kN, [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) * 0.5;
    }, threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double serial = run(1);
  EXPECT_DOUBLE_EQ(run(2), serial);
  EXPECT_DOUBLE_EQ(run(8), serial);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> visits(3);
  parallel_for(3, [&](std::size_t i) { visits[i].fetch_add(1); }, 16);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

}  // namespace
