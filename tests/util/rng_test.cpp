// Unit and statistical tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.h"

namespace {

using hmn::util::Rng;
using hmn::util::derive_seed;

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);  // 64-bit collisions are essentially impossible
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 7.25);
    ASSERT_GE(x, -3.5);
    ASSERT_LT(x, 7.25);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.uniform(4.0, 4.0), 4.0);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
  Rng rng(17);
  std::array<int, 5> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  }
  for (const int c : counts) {
    // Each bucket expects kN/5 = 20000; 4 sigma ~ +-536.
    EXPECT_NEAR(c, kN / 5, 600);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(31);
  constexpr int kN = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(43);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // 1/100! chance
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng rng(1);
  std::vector<int> empty;
  rng.shuffle(empty.begin(), empty.end());
  std::vector<int> one{5};
  rng.shuffle(one.begin(), one.end());
  EXPECT_EQ(one[0], 5);
}

TEST(Rng, ShuffleUniformFirstElement) {
  // Over many shuffles of {0,1,2,3}, each value should land in slot 0
  // about a quarter of the time.
  Rng rng(61);
  std::array<int, 4> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    std::array<int, 4> v{0, 1, 2, 3};
    rng.shuffle(v.begin(), v.end());
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (const int c : counts) EXPECT_NEAR(c, kN / 4, 400);
}

TEST(DeriveSeed, DistinctCellsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 20; ++a) {
    for (std::uint64_t b = 0; b < 20; ++b) {
      seeds.insert(derive_seed(42, a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);
}

TEST(DeriveSeed, DependsOnEveryArgument) {
  const auto base = derive_seed(1, 2, 3, 4);
  EXPECT_NE(base, derive_seed(9, 2, 3, 4));
  EXPECT_NE(base, derive_seed(1, 9, 3, 4));
  EXPECT_NE(base, derive_seed(1, 2, 9, 4));
  EXPECT_NE(base, derive_seed(1, 2, 3, 9));
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(7, 8, 9), derive_seed(7, 8, 9));
}

TEST(DeriveSeed, ArgumentOrderMatters) {
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
}

}  // namespace
