// Tests for the bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace {

using hmn::util::bootstrap_mean_ci;
using hmn::util::bootstrap_paired_diff_ci;

TEST(Bootstrap, DegenerateInputsCollapseToPointEstimate) {
  const std::vector<double> empty;
  const auto ci0 = bootstrap_mean_ci(empty);
  EXPECT_DOUBLE_EQ(ci0.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci0.hi, 0.0);

  const std::vector<double> one{5.0};
  const auto ci1 = bootstrap_mean_ci(one);
  EXPECT_DOUBLE_EQ(ci1.lo, 5.0);
  EXPECT_DOUBLE_EQ(ci1.hi, 5.0);
}

TEST(Bootstrap, ConstantDataZeroWidth) {
  const std::vector<double> xs(50, 3.0);
  const auto ci = bootstrap_mean_ci(xs);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Bootstrap, IntervalBracketsTrueMean) {
  hmn::util::Rng rng(12);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  const auto ci = bootstrap_mean_ci(xs, 0.95, 2000, 7);
  EXPECT_LT(ci.lo, 10.0 + 0.5);
  EXPECT_GT(ci.hi, 10.0 - 0.5);
  EXPECT_LT(ci.lo, ci.hi);
  // Width roughly 2 * 1.96 * sigma/sqrt(n) ~ 0.55.
  EXPECT_NEAR(ci.hi - ci.lo, 0.55, 0.25);
}

TEST(Bootstrap, HigherLevelWiderInterval) {
  hmn::util::Rng rng(13);
  std::vector<double> xs(100);
  for (auto& x : xs) x = rng.uniform(0, 10);
  const auto narrow = bootstrap_mean_ci(xs, 0.80, 2000, 3);
  const auto wide = bootstrap_mean_ci(xs, 0.99, 2000, 3);
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Bootstrap, DeterministicForSeed) {
  hmn::util::Rng rng(14);
  std::vector<double> xs(60);
  for (auto& x : xs) x = rng.normal(0, 1);
  const auto a = bootstrap_mean_ci(xs, 0.95, 500, 42);
  const auto b = bootstrap_mean_ci(xs, 0.95, 500, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, PairedDiffDetectsConsistentGap) {
  // ys = xs + 1 everywhere: the diff CI must tightly bracket -1 and
  // exclude zero.
  hmn::util::Rng rng(15);
  std::vector<double> xs(100), ys(100);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(0, 100);
    ys[i] = xs[i] + 1.0;
  }
  const auto ci = bootstrap_paired_diff_ci(xs, ys);
  EXPECT_NEAR(ci.lo, -1.0, 1e-9);
  EXPECT_NEAR(ci.hi, -1.0, 1e-9);
}

TEST(Bootstrap, PairedDiffNoGapIncludesZero) {
  // Symmetric noise around equality: the CI should straddle zero.
  hmn::util::Rng rng(16);
  std::vector<double> xs(300), ys(300);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double base = rng.uniform(0, 100);
    xs[i] = base + rng.normal(0, 1);
    ys[i] = base + rng.normal(0, 1);
  }
  const auto ci = bootstrap_paired_diff_ci(xs, ys, 0.95, 2000, 5);
  EXPECT_LT(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
}

TEST(Bootstrap, PairedDiffLengthMismatchIsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{1, 2};
  const auto ci = bootstrap_paired_diff_ci(xs, ys);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);
}

}  // namespace
