// Contention stress for the thread pool, meant to run under TSan in CI:
// parallel_for over per-index derived seeds must produce bit-identical
// results at any thread count, and submit/wait_idle must survive many
// small racing tasks without losing or duplicating work.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using hmn::util::parallel_for;
using hmn::util::Rng;
using hmn::util::ThreadPool;

/// Per-index work whose result depends only on the index-derived seed —
/// the contract every parallel experiment/admission sweep in the library
/// relies on.
std::uint64_t cell_result(std::size_t i) {
  Rng rng(hmn::util::derive_seed(1234, i));
  std::uint64_t acc = 0;
  for (int k = 0; k < 100; ++k) {
    acc = acc * 31 + rng.index(1'000'000);
  }
  return acc;
}

TEST(ThreadPoolStress, ParallelForBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 2000;
  std::vector<std::uint64_t> serial(kN);
  parallel_for(kN, [&](std::size_t i) { serial[i] = cell_result(i); }, 1);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    std::vector<std::uint64_t> parallel(kN);
    parallel_for(
        kN, [&](std::size_t i) { parallel[i] = cell_result(i); }, threads,
        /*chunk=*/3);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ThreadPoolStress, SubmitWaitIdleRoundsLoseNothing) {
  // Many rounds of tiny racing tasks with a wait_idle barrier between
  // rounds: every task runs exactly once, and wait_idle really is a
  // barrier (the counter is stable when it returns).
  ThreadPool pool(8);
  std::atomic<std::size_t> done{0};
  std::size_t expected = 0;
  for (std::size_t round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + round % 17;
    for (std::size_t t = 0; t < tasks; ++t) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    expected += tasks;
    pool.wait_idle();
    EXPECT_EQ(done.load(), expected);
  }
}

TEST(ThreadPoolStress, ConcurrentAccumulationMatchesSerialSum) {
  // Tasks hammer one atomic from all workers; the total is exact
  // regardless of interleaving.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    expected += i;
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
