// Tests for the greedy node-ranking VNE mapper.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "extensions/greedy_rank_mapper.h"
#include "extensions/min_hosts_mapper.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using extensions::GreedyRankMapper;

TEST(GreedyRank, Name) {
  EXPECT_EQ(GreedyRankMapper().name(), "GreedyRank");
}

TEST(GreedyRank, EmptyClusterInvalid) {
  const model::PhysicalCluster cluster;
  const model::VirtualEnvironment venv;
  EXPECT_EQ(GreedyRankMapper().map(cluster, venv, 1).error,
            core::MapErrorCode::kInvalidInput);
}

TEST(GreedyRank, HeaviestGuestGetsBestHost) {
  // Hosts differ in CPU; with one guest, it must go to the top-ranked
  // (highest CPU x bandwidth) host.
  auto cluster = line_cluster({{500, 4096, 4096}, {3000, 4096, 4096},
                               {1000, 4096, 4096}});
  model::VirtualEnvironment venv;
  const GuestId g = venv.add_guest({100, 100, 100});
  const auto out = GreedyRankMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok()) << out.detail;
  // Host 1 (3000 MIPS, middle of the line = two incident links) wins.
  EXPECT_EQ(out.mapping->guest_host[g.index()], n(1));
}

TEST(GreedyRank, FailsWhenGuestFitsNowhere) {
  const auto cluster = line_cluster(2, {1000, 100, 100});
  auto venv = chain_venv(1, {10, 500, 10});
  const auto out = GreedyRankMapper().map(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kHostingFailed);
}

TEST(GreedyRank, ValidOnPaperScenarios) {
  const GreedyRankMapper mapper;
  for (const auto kind : {workload::ClusterKind::kTorus2D,
                          workload::ClusterKind::kSwitched}) {
    const auto cluster = workload::make_paper_cluster(kind, 33);
    for (const double ratio : {2.5, 20.0}) {
      const workload::Scenario sc{
          ratio, ratio > 10 ? 0.01 : 0.02,
          ratio > 10 ? workload::WorkloadKind::kLowLevel
                     : workload::WorkloadKind::kHighLevel};
      const auto venv = workload::make_scenario_venv(sc, cluster, 34);
      const auto out = mapper.map(cluster, venv, 35);
      ASSERT_TRUE(out.ok()) << sc.label() << ": " << out.detail;
      EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok())
          << sc.label();
    }
  }
}

TEST(GreedyRank, DeterministicIgnoringSeed) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 36);
  const workload::Scenario sc{5.0, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 37);
  const GreedyRankMapper mapper;
  const auto a = mapper.map(cluster, venv, 1);
  const auto b = mapper.map(cluster, venv, 999);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.mapping->guest_host, b.mapping->guest_host);
}

TEST(GreedyRank, SpreadsLoadBetterThanConsolidation) {
  // Greedy ranking chases the highest-availability host each step, so its
  // balance must land far closer to HMN's than to the deliberately
  // consolidating MinHosts mapper's.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 38);
  const workload::Scenario sc{5.0, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 39);
  const auto greedy = GreedyRankMapper().map(cluster, venv, 1);
  const auto packed = extensions::MinHostsMapper().map(cluster, venv, 1);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(packed.ok());
  EXPECT_LT(core::load_balance_factor(cluster, venv, *greedy.mapping),
            core::load_balance_factor(cluster, venv, *packed.mapping));
}

}  // namespace
