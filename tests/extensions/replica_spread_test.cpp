// Anti-affinity replica spreading: the post-pass moves k-of-n group
// members into distinct failure domains when it can, falls back to the
// inner mapping when it cannot, and is byte-invisible whenever there is
// nothing to spread.
#include <gtest/gtest.h>

#include <set>

#include "core/hmn_mapper.h"
#include "core/validator.h"
#include "extensions/replica_spread.h"
#include "testing/fixtures.h"
#include "workload/power_domains.h"

namespace {

using namespace hmn;
using namespace hmn::test;

/// Replicated venv: `n` unlinked guests in one k-of-n group.  No links, so
/// the base HMN mapper happily packs everything onto one big host.
model::VirtualEnvironment replica_venv(std::size_t n, std::size_t k,
                                       double mem_mb = 256.0) {
  model::VirtualEnvironment venv;
  std::vector<GuestId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(venv.add_guest({10, mem_mb, 100}));
  }
  venv.add_replica_group(ids, k);
  return venv;
}

std::set<std::uint32_t> member_domains(
    const model::PhysicalCluster& cluster, const core::Mapping& mapping,
    const model::ReplicaGroup& group) {
  std::set<std::uint32_t> domains;
  const auto& pd = cluster.failure_domains().power_domain;
  for (const GuestId m : group.members) {
    domains.insert(pd[mapping.guest_host[m.index()].index()]);
  }
  return domains;
}

TEST(ReplicaSpreadTest, SpreadsGroupAcrossPowerDomains) {
  auto cluster = line_cluster(6);
  workload::annotate_failure_domains(cluster, 3);
  extensions::ReplicaSpreadMapper mapper(
      std::make_unique<core::HmnMapper>());

  const auto venv = replica_venv(3, 2);
  const auto out = mapper.map(cluster, venv, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
  // Six hosts / three power domains / three replicas: a perfect spread is
  // always reachable, so every member must land in its own domain.
  EXPECT_EQ(
      member_domains(cluster, *out.mapping, venv.replica_group(0)).size(),
      3u);
}

TEST(ReplicaSpreadTest, BeatsTheInnerMapperOnDomainCount) {
  auto cluster = line_cluster(6);
  workload::annotate_failure_domains(cluster, 3);
  core::HmnMapper inner;
  const auto venv = replica_venv(3, 2);
  const auto base = inner.map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());

  extensions::ReplicaSpreadMapper mapper(
      std::make_unique<core::HmnMapper>());
  const auto spread = mapper.map(cluster, venv, 1);
  ASSERT_TRUE(spread.ok());
  EXPECT_GE(
      member_domains(cluster, *spread.mapping, venv.replica_group(0)).size(),
      member_domains(cluster, *base.mapping, venv.replica_group(0)).size());
}

TEST(ReplicaSpreadTest, InvisibleWithoutAnnotationOrGroups) {
  core::HmnMapper inner;
  extensions::ReplicaSpreadMapper mapper(
      std::make_unique<core::HmnMapper>());

  // Un-annotated cluster: pass-through even with a replica group.
  const auto bare = line_cluster(6);
  const auto venv = replica_venv(3, 2);
  EXPECT_EQ(core::fingerprint(*mapper.map(bare, venv, 5).mapping),
            core::fingerprint(*inner.map(bare, venv, 5).mapping));

  // Annotated cluster, group-less venv: pass-through too.
  auto annotated = line_cluster(6);
  workload::annotate_failure_domains(annotated, 3);
  const auto plain = chain_venv(3);
  EXPECT_EQ(core::fingerprint(*mapper.map(annotated, plain, 5).mapping),
            core::fingerprint(*inner.map(annotated, plain, 5).mapping));
}

TEST(ReplicaSpreadTest, FallsBackWhenNothingFitsElsewhere) {
  // One host only: no alternative placements exist, so the spread must
  // return the inner mapping unchanged rather than failing.
  auto cluster = line_cluster(1);
  workload::annotate_failure_domains(cluster, 3);
  extensions::ReplicaSpreadMapper mapper(
      std::make_unique<core::HmnMapper>());
  const auto venv = replica_venv(2, 1);
  const auto out = mapper.map(cluster, venv, 3);
  ASSERT_TRUE(out.ok());
  for (const NodeId h : out.mapping->guest_host) {
    EXPECT_EQ(h, cluster.hosts()[0]);
  }
}

TEST(ReplicaSpreadTest, PoolWrapperPreservesOrderAndNames) {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  const std::string inner_name = pool.at(0).name();
  extensions::HeuristicPool wrapped =
      extensions::replica_aware(std::move(pool));
  ASSERT_EQ(wrapped.size(), 1u);
  EXPECT_EQ(wrapped.at(0).name(), "replica-spread(" + inner_name + ")");
}

TEST(ReplicaSpreadTest, DeterministicAcrossRepeatedCalls) {
  auto cluster = line_cluster(9);
  workload::annotate_failure_domains(cluster, 3);
  extensions::ReplicaSpreadMapper mapper(
      std::make_unique<core::HmnMapper>());
  const auto venv = replica_venv(3, 2);
  const auto a = mapper.map(cluster, venv, 11);
  const auto b = mapper.map(cluster, venv, 11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(core::fingerprint(*a.mapping), core::fingerprint(*b.mapping));
}

}  // namespace
