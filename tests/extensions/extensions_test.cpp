// Tests for the Section 6 extensions: alternative objectives, the
// consolidating MinHosts mapper, and the heuristic pool.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/validator.h"
#include "extensions/heuristic_pool.h"
#include "extensions/min_hosts_mapper.h"
#include "extensions/objectives.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using extensions::HeuristicPool;
using extensions::LoadBalanceObjective;
using extensions::MinHostsMapper;
using extensions::MinHostsObjective;
using extensions::NetworkFootprintObjective;

core::Mapping mapping_on(std::initializer_list<unsigned> hosts) {
  core::Mapping m;
  for (const unsigned h : hosts) m.guest_host.push_back(n(h));
  return m;
}

TEST(Objectives, MinHostsCountsDistinctHosts) {
  const auto cluster = line_cluster(4);
  model::VirtualEnvironment venv;
  for (int i = 0; i < 3; ++i) venv.add_guest({});
  const MinHostsObjective obj;
  auto m = mapping_on({0, 0, 0});
  m.link_paths = {};
  EXPECT_DOUBLE_EQ(obj.evaluate(cluster, venv, m), 1.0);
  m = mapping_on({0, 1, 2});
  EXPECT_DOUBLE_EQ(obj.evaluate(cluster, venv, m), 3.0);
}

TEST(Objectives, NetworkFootprintWeighsHops) {
  const auto cluster = line_cluster(3);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {10.0, 60.0});
  const NetworkFootprintObjective obj;
  core::Mapping colocated = mapping_on({0, 0});
  colocated.link_paths = {{}};
  EXPECT_DOUBLE_EQ(obj.evaluate(cluster, venv, colocated), 0.0);
  core::Mapping spread = mapping_on({0, 2});
  spread.link_paths = {{EdgeId{0}, EdgeId{1}}};
  EXPECT_DOUBLE_EQ(obj.evaluate(cluster, venv, spread), 20.0);
}

TEST(Objectives, LoadBalanceDelegatesToEq10) {
  const auto cluster = line_cluster({{1000, 4096, 4096}, {3000, 4096, 4096}});
  model::VirtualEnvironment venv;
  venv.add_guest({2000, 64, 64});
  const LoadBalanceObjective obj;
  core::Mapping m = mapping_on({1});
  m.link_paths = {};
  EXPECT_DOUBLE_EQ(obj.evaluate(cluster, venv, m), 0.0);
}

TEST(Objectives, NamesAreStable) {
  EXPECT_EQ(LoadBalanceObjective().name(), "load-balance");
  EXPECT_EQ(MinHostsObjective().name(), "min-hosts");
  EXPECT_EQ(NetworkFootprintObjective().name(), "network-footprint");
}

TEST(MinHostsMapper, ConsolidatesOntoFewerHosts) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 21);
  const workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 22);

  const MinHostsMapper consolidating;
  const core::HmnMapper balancing;
  const auto a = consolidating.map(cluster, venv, 1);
  const auto b = balancing.map(cluster, venv, 1);
  ASSERT_TRUE(a.ok()) << a.detail;
  ASSERT_TRUE(b.ok()) << b.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *a.mapping).ok());

  const MinHostsObjective hosts_used;
  EXPECT_LT(hosts_used.evaluate(cluster, venv, *a.mapping),
            hosts_used.evaluate(cluster, venv, *b.mapping));
}

TEST(MinHostsMapper, FailsWhenGuestFitsNowhere) {
  const auto cluster = line_cluster(2, {1000, 100, 100});
  auto venv = chain_venv(1, {10, 500, 10});
  const auto out = MinHostsMapper().map(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kHostingFailed);
}

TEST(MinHostsMapper, EmptyClusterInvalid) {
  const model::PhysicalCluster cluster;
  const model::VirtualEnvironment venv;
  EXPECT_EQ(MinHostsMapper().map(cluster, venv, 1).error,
            core::MapErrorCode::kInvalidInput);
}

TEST(MinHostsMapper, RespectsAllConstraints) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 23);
  const workload::Scenario sc{20.0, 0.01, workload::WorkloadKind::kLowLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 24);
  const auto out = MinHostsMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

TEST(HeuristicPool, FirstSuccessStopsAtFirstValid) {
  HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  pool.add(std::make_unique<MinHostsMapper>());
  const auto cluster = line_cluster(3);
  auto venv = chain_venv(6);
  const auto out = pool.first_success(cluster, venv, 1);
  ASSERT_TRUE(out.ok());
  // HMN (first registered) should have produced this mapping: identical to
  // running it directly.
  const auto direct = core::HmnMapper().map(cluster, venv, 1);
  EXPECT_EQ(out.mapping->guest_host, direct.mapping->guest_host);
}

TEST(HeuristicPool, FirstSuccessFallsThroughOnFailure) {
  HeuristicPool pool;
  // First mapper always fails (hosting-impossible options? use a cluster
  // trick): instead register HMN twice but feed an instance only the
  // *second* can map — impossible; so test fall-through with an empty-pool
  // error then a real mapper.
  pool.add(std::make_unique<MinHostsMapper>());
  const auto cluster = line_cluster(2, {1000, 100, 100});
  auto venv = chain_venv(1, {10, 500, 10});  // unmappable by anything
  const auto out = pool.first_success(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kHostingFailed);
}

TEST(HeuristicPool, EmptyPoolReportsError) {
  const HeuristicPool pool;
  const auto cluster = line_cluster(2);
  const model::VirtualEnvironment venv;
  EXPECT_FALSE(pool.first_success(cluster, venv, 1).ok());
  std::string winner;
  EXPECT_FALSE(pool.best_by(cluster, venv, 1, LoadBalanceObjective{}, &winner)
                   .ok());
}

TEST(HeuristicPool, BestByPicksObjectiveMinimizer) {
  HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  pool.add(std::make_unique<MinHostsMapper>());
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 25);
  const workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 26);

  std::string winner;
  const auto best_packed =
      pool.best_by(cluster, venv, 1, MinHostsObjective{}, &winner);
  ASSERT_TRUE(best_packed.ok());
  EXPECT_EQ(winner, "MinHosts");

  const auto best_balanced =
      pool.best_by(cluster, venv, 1, LoadBalanceObjective{}, &winner);
  ASSERT_TRUE(best_balanced.ok());
  EXPECT_EQ(winner, "HMN");
}

TEST(HeuristicPool, DefaultPoolMapsEverything) {
  const auto pool = extensions::default_pool();
  EXPECT_EQ(pool.size(), 2u);
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 27);
  const workload::Scenario sc{5.0, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 28);
  const auto out = pool.first_success(cluster, venv, 1);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

}  // namespace
