// Tests for the R / RA / HS baseline mappers.
#include <gtest/gtest.h>

#include "baselines/composite_mappers.h"
#include "baselines/random_host_mapper.h"
#include "core/validator.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using baselines::BaselineOptions;
using baselines::HostingSearchMapper;
using baselines::RandomAStarMapper;
using baselines::RandomDfsMapper;
using baselines::random_placement;
using core::MapErrorCode;
using core::ResidualState;

TEST(RandomPlacement, RespectsResourceConstraints) {
  const auto cluster = line_cluster(3, {1000, 1000, 1000});
  auto venv = chain_venv(6, {10, 400, 400});
  util::Rng rng(1);
  ResidualState st(cluster);
  const auto placement = random_placement(venv, st, rng);
  ASSERT_TRUE(placement.has_value());
  // 6 guests x 400 MB over 3 hosts of 1000 MB: exactly 2 per host.
  std::vector<int> count(3, 0);
  for (const NodeId h : *placement) ++count[h.index()];
  for (const int c : count) EXPECT_EQ(c, 2);
}

TEST(RandomPlacement, FailsWhenNothingFits) {
  const auto cluster = line_cluster(2, {1000, 100, 100});
  auto venv = chain_venv(1, {10, 500, 10});
  util::Rng rng(1);
  ResidualState st(cluster);
  EXPECT_FALSE(random_placement(venv, st, rng).has_value());
}

TEST(RandomPlacement, SpreadsAcrossHosts) {
  const auto cluster = line_cluster(4, {1000, 100000, 100000});
  auto venv = chain_venv(200, {10, 10, 10});
  util::Rng rng(9);
  ResidualState st(cluster);
  const auto placement = random_placement(venv, st, rng);
  ASSERT_TRUE(placement.has_value());
  std::vector<int> count(4, 0);
  for (const NodeId h : *placement) ++count[h.index()];
  for (const int c : count) {
    EXPECT_GT(c, 20);  // roughly uniform: expected 50 each
    EXPECT_LT(c, 80);
  }
}

TEST(RandomPlacement, DifferentSeedsDifferentPlacements) {
  const auto cluster = line_cluster(8, {1000, 100000, 100000});
  auto venv = chain_venv(50, {10, 10, 10});
  util::Rng r1(1), r2(2);
  ResidualState s1(cluster), s2(cluster);
  const auto p1 = random_placement(venv, s1, r1);
  const auto p2 = random_placement(venv, s2, r2);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_NE(*p1, *p2);
}

TEST(Baselines, NamesMatchPaperColumns) {
  EXPECT_EQ(RandomDfsMapper().name(), "R");
  EXPECT_EQ(RandomAStarMapper().name(), "RA");
  EXPECT_EQ(HostingSearchMapper().name(), "HS");
}

TEST(RandomAStar, ValidMappingOnEasyInstance) {
  const auto cluster = line_cluster(4);
  auto venv = chain_venv(8);
  BaselineOptions opts;
  opts.max_tries = 50;
  const RandomAStarMapper mapper(opts);
  const auto out = mapper.map(cluster, venv, 3);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
  EXPECT_GE(out.stats.tries, 1u);
}

TEST(RandomDfs, SucceedsOnSwitchedCluster) {
  // On a star/switched fabric the naive DFS always finds the 2-hop route.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 5);
  workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 6);
  BaselineOptions opts;
  opts.max_tries = 20;
  const RandomDfsMapper mapper(opts);
  const auto out = mapper.map(cluster, venv, 7);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

TEST(RandomDfs, ExhaustsTriesOnImpossibleInstance) {
  const auto cluster = line_cluster(2, {1000, 1000, 1000});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 700, 10});
  const GuestId b = venv.add_guest({10, 700, 10});
  venv.add_link(a, b, {1.0, 2.0});  // unroutable: 2 ms < 5 ms hop latency
  BaselineOptions opts;
  opts.max_tries = 5;
  const RandomDfsMapper mapper(opts);
  const auto out = mapper.map(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, MapErrorCode::kTriesExhausted);
  EXPECT_EQ(out.stats.tries, 5u);
}

TEST(RandomAStar, RetriesUntilPlacementRoutes) {
  // A ring whose only wide edges sit between specific host pairs: some
  // random placements cannot route the heavy link, so RA must retry
  // placements (tries > 1 for at least some seed) yet eventually succeed.
  const auto cluster = ring_cluster(4, {1000, 500, 4096}, {100.0, 5.0});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 400, 10});
  const GuestId b = venv.add_guest({10, 400, 10});
  venv.add_link(a, b, {90.0, 5.0});  // 5 ms: adjacent hosts only
  BaselineOptions opts;
  opts.max_tries = 200;
  const RandomAStarMapper mapper(opts);
  bool needed_retry = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto out = mapper.map(cluster, venv, seed);
    ASSERT_TRUE(out.ok()) << out.detail;
    EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
    needed_retry |= out.stats.tries > 1;
  }
  // Guests of 400 MB on 500-MB hosts can never co-locate, and the 5 ms
  // bound rules out the opposite-corner placements (2 hops = 10 ms), so
  // about a third of random placements must be retried.
  EXPECT_TRUE(needed_retry);
}

TEST(HostingSearch, HostingFailureIsTerminal) {
  const auto cluster = line_cluster(2, {1000, 100, 100});
  auto venv = chain_venv(2, {10, 500, 10});
  const HostingSearchMapper mapper;
  const auto out = mapper.map(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, MapErrorCode::kHostingFailed);
}

TEST(HostingSearch, SucceedsOnSwitchedCluster) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 8);
  workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 9);
  BaselineOptions opts;
  opts.max_tries = 20;
  const HostingSearchMapper mapper(opts);
  const auto out = mapper.map(cluster, venv, 1);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

TEST(HostingSearch, PlacementIdenticalToHostingStage) {
  // HS must not re-randomize the placement across networking retries.
  const auto cluster = line_cluster(3);
  auto venv = chain_venv(6);
  BaselineOptions opts;
  opts.max_tries = 3;
  const HostingSearchMapper mapper(opts);
  const auto o1 = mapper.map(cluster, venv, 1);
  const auto o2 = mapper.map(cluster, venv, 999);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1.mapping->guest_host, o2.mapping->guest_host);
}

TEST(Baselines, AllValidOnPaperSwitchedScenario) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 11);
  workload::Scenario sc{5.0, 0.015, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 12);
  BaselineOptions opts;
  opts.max_tries = 30;
  const RandomDfsMapper r(opts);
  const RandomAStarMapper ra(opts);
  const HostingSearchMapper hs(opts);
  for (const core::Mapper* m :
       std::initializer_list<const core::Mapper*>{&r, &ra, &hs}) {
    const auto out = m->map(cluster, venv, 13);
    ASSERT_TRUE(out.ok()) << m->name() << ": " << out.detail;
    EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok())
        << m->name();
  }
}

}  // namespace
