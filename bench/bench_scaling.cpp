// E10 — scalability beyond the paper: HMN mapping time as the *cluster*
// grows (the paper fixes 40 hosts and grows only the virtual side).
//
// Sweeps square-ish 2-D tori from 40 to 640 hosts at a fixed 10:1 ratio
// and reports per-stage time.  Expectation: Networking dominates and grows
// with links x (per-A*Prune cost on the larger fabric); Hosting's repeated
// re-sorting grows mildly; the mapper stays interactive (sub-second into
// hundreds of hosts), supporting the paper's closing claim that automatic
// mapping scales to "large virtualized environments".
#include "bench_common.h"

#include "topology/topologies.h"
#include "util/stats.h"
#include "workload/host_generator.h"
#include "workload/venv_generator.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  const std::size_t reps = std::max<std::size_t>(bench_reps() / 6, 3);
  struct Size {
    std::size_t rows, cols;
  };
  const std::vector<Size> sizes{{8, 5}, {8, 10}, {16, 10}, {16, 20}};

  util::Table table({"hosts", "guests", "vlinks", "hosting (s)",
                     "migration (s)", "networking (s)", "total (s)",
                     "valid"});
  const core::HmnMapper mapper;
  std::printf("cluster-size scaling sweep (10:1 ratio, density 0.01, "
              "%zu reps)\n", reps);

  for (const Size& size : sizes) {
    const std::size_t hosts = size.rows * size.cols;
    // Keep the workload's 30-60 ms latency envelope satisfiable at every
    // cluster size (the paper's 5 ms/hop over an 8x5 torus gives a 30 ms
    // diameter — exactly the tightest virtual bound): scale per-hop
    // latency down with the torus diameter so the sweep measures mapping
    // *cost*, not latency feasibility.
    const double diameter =
        static_cast<double>(size.rows / 2 + size.cols / 2);
    model::LinkProps link = workload::paper_link_props();
    link.latency_ms = std::min(5.0, 30.0 / diameter);
    util::RunningStats hosting, migration, networking, total;
    std::size_t guests = 0, vlinks = 0, valid_runs = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto seed = util::derive_seed(env_seed(), hosts, rep);
      util::Rng rng(seed);
      auto caps = workload::generate_hosts(
          hosts, workload::paper_host_profile(), rng);
      const auto cluster = model::PhysicalCluster::build(
          topology::torus_2d(size.rows, size.cols), std::move(caps), link);

      workload::VenvGenOptions vopts;
      vopts.guest_count = hosts * 10;
      vopts.density = 0.01;
      vopts.profile = workload::high_level_profile();
      vopts.normalize_to = &cluster;
      const auto venv = workload::generate_venv(vopts, rng);
      guests = venv.guest_count();
      vlinks = venv.link_count();

      const auto out = mapper.map(cluster, venv, seed);
      if (!out.ok()) continue;
      ++valid_runs;
      hosting.add(out.stats.hosting_seconds);
      migration.add(out.stats.migration_seconds);
      networking.add(out.stats.networking_seconds);
      total.add(out.stats.total_seconds);
    }
    table.add_row({std::to_string(hosts), std::to_string(guests),
                   std::to_string(vlinks),
                   util::Table::fmt(hosting.mean(), 4),
                   util::Table::fmt(migration.mean(), 4),
                   util::Table::fmt(networking.mean(), 4),
                   util::Table::fmt(total.mean(), 4),
                   std::to_string(valid_runs) + "/" + std::to_string(reps)});
  }
  std::printf("\n%s", table.to_string().c_str());
  write_file(out_dir() / "scaling_cluster_size.csv", table.to_csv());
  return 0;
}
