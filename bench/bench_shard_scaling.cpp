// E14 — sharded admission scaling: the PlacementRouter (one TenancyManager
// per shard, power-of-two-choices routing) against flat admission on the
// same fabric, workload, and code path (shards=1).
//
// E10 showed the Networking stage growing superlinearly with fabric size;
// E14 measures what that costs an *online* admission pipeline and what
// confining tenants to shards buys back.  Sweeps switch-tree fabrics of
// {160, 320, 640, 1280} hosts x {1, 4, 8, 16} shards and reports
// admissions/sec plus per-admission latency p50/p99 (from the router's
// fixed-bucket histogram).  Expectation: per-admission work scales with the
// shard, not the fabric, so sharded p99 drops by roughly the shard count
// while the admitted fraction stays close to flat (P2C keeps shards
// balanced; exhaustive fallback rescues probe losers).
//
// Gates (exit nonzero on violation):
//   * determinism — the decision log and placement_hash sequence must be
//     byte-identical for threads=1 vs threads=4 at the same seed;
//   * sharded p99 no worse than flat at every size;
//   * full run only: at 640 hosts, the best sharded p99 must be >= 4x
//     lower than flat.
// `--smoke` runs the 160-host row with the same determinism/no-worse
// checks for CI.
#include "bench_common.h"

#include <string_view>
#include <thread>

#include "graph/dijkstra.h"
#include "orchestrator/router.h"
#include "topology/topologies.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/host_generator.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;

/// Hop diameter of a tree fabric by double sweep (exact on trees): the
/// eccentricity of the farthest node from node 0.
double tree_hop_diameter(const graph::Graph& g) {
  auto unit = [](EdgeId) { return 1.0; };
  auto farthest = [&](NodeId from) {
    const auto sp = graph::dijkstra(g, from, unit);
    std::size_t best = 0;
    for (std::size_t v = 1; v < g.node_count(); ++v) {
      if (sp.dist[v] > sp.dist[best]) best = v;
    }
    return std::pair{NodeId{static_cast<NodeId::underlying_type>(best)},
                     sp.dist[best]};
  };
  const auto [turn, _] = farthest(NodeId{0});
  return std::max(1.0, farthest(turn).second);
}

model::PhysicalCluster make_fabric(std::size_t hosts, std::uint64_t seed) {
  auto topo = topology::switch_tree(hosts, 8, 4);
  // Keep the workload's 30-60 ms latency envelope satisfiable at every
  // fabric size (as in E10): scale per-hop latency with the tree diameter.
  model::LinkProps link = workload::paper_link_props();
  link.latency_ms = std::min(5.0, 30.0 / tree_hop_diameter(topo.graph));
  util::Rng rng(seed);
  auto caps =
      workload::generate_hosts(hosts, workload::paper_host_profile(), rng);
  return model::PhysicalCluster::build(std::move(topo), std::move(caps),
                                       link);
}

/// The E12/E13 tenant shape: 4-10 host-scale guests, density 0.2.
std::vector<orchestrator::AdmissionRequest> make_requests(
    std::size_t count, std::uint64_t seed) {
  workload::GuestProfile profile = workload::high_level_profile();
  profile.mem_mb = {512.0, 1536.0};
  std::vector<orchestrator::AdmissionRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng(util::derive_seed(seed, 7, i));
    workload::VenvGenOptions vopts;
    vopts.guest_count = 4 + rng.index(7);
    vopts.density = 0.2;
    vopts.profile = profile;
    orchestrator::AdmissionRequest req;
    req.key = static_cast<std::uint32_t>(i + 1);
    req.venv = workload::generate_venv(vopts, rng);
    req.seed = util::derive_seed(seed, 8, i);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

struct CellResult {
  std::size_t admitted = 0;
  std::size_t shard_count = 0;
  double wall_seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::string signature;
};

CellResult run_cell(const model::PhysicalCluster& fabric,
                    const std::vector<orchestrator::AdmissionRequest>& reqs,
                    std::size_t shards, std::size_t threads,
                    std::uint64_t seed) {
  orchestrator::RouterOptions opts;
  opts.shards = shards;
  opts.threads = threads;
  // Finer buckets than the default: shard-local admissions sit well under
  // a millisecond, and the p99 gate needs resolution there.
  opts.latency_histogram_upper_us = 2e5;
  opts.latency_histogram_buckets = 4096;
  orchestrator::PlacementRouter router(fabric, opts);

  constexpr std::size_t kBatch = 16;
  CellResult out;
  out.shard_count = router.shard_count();
  util::Timer timer;
  for (std::size_t start = 0; start < reqs.size(); start += kBatch) {
    const auto end = std::min(start + kBatch, reqs.size());
    const std::vector<orchestrator::AdmissionRequest> batch(
        reqs.begin() + static_cast<std::ptrdiff_t>(start),
        reqs.begin() + static_cast<std::ptrdiff_t>(end));
    for (const auto& d :
         router.admit_batch(batch, util::derive_seed(seed, 9, start))) {
      if (d.admitted) ++out.admitted;
    }
  }
  out.wall_seconds = timer.elapsed_seconds();
  out.p50_us = router.latency_histogram().percentile(50.0);
  out.p99_us = router.latency_histogram().percentile(99.0);
  out.signature = router.decision_signature();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmn::bench;
  const bool smoke = argc > 1 && std::string_view(argv[1]) == "--smoke";

  const std::vector<std::size_t> host_sizes =
      smoke ? std::vector<std::size_t>{160}
            : std::vector<std::size_t>{160, 320, 640, 1280};
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 4, 8, 16};
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());

  std::printf("sharded vs flat admission, switch-tree fabrics%s\n\n",
              smoke ? " (smoke)" : "");
  util::Table table({"hosts", "shards", "threads", "admitted", "adm/sec",
                     "p50 ms", "p99 ms", "speedup p99"});

  bool deterministic = true;
  bool never_worse = true;
  double gate_flat_p99 = 0.0, gate_best_sharded_p99 = 0.0;

  for (const std::size_t hosts : host_sizes) {
    const auto seed = util::derive_seed(env_seed(), 14, hosts);
    const auto fabric = make_fabric(hosts, seed);
    // ~65% of aggregate memory across the batch keeps rejections rare but
    // admission non-trivial (same load shape as the E12/E13 churn).
    const auto requests = make_requests(std::max<std::size_t>(8, hosts / 6),
                                        seed);

    double flat_p99 = 0.0;
    double best_sharded_p99 = 0.0;
    for (const std::size_t shards : shard_counts) {
      const std::size_t threads = shards == 1 ? 1 : std::min(shards, hw);
      const CellResult cell =
          run_cell(fabric, requests, shards, threads, seed);
      if (shards == 1) {
        flat_p99 = cell.p99_us;
      } else if (best_sharded_p99 == 0.0 || cell.p99_us < best_sharded_p99) {
        best_sharded_p99 = cell.p99_us;
      }
      table.add_row(
          {std::to_string(hosts), std::to_string(cell.shard_count),
           std::to_string(threads),
           std::to_string(cell.admitted) + "/" +
               std::to_string(requests.size()),
           util::Table::fmt(static_cast<double>(requests.size()) /
                                cell.wall_seconds,
                            1),
           util::Table::fmt(cell.p50_us / 1000.0, 2),
           util::Table::fmt(cell.p99_us / 1000.0, 2),
           shards == 1 ? std::string("1.0x")
                       : util::Table::fmt(flat_p99 / cell.p99_us, 1) + "x"});
    }

    // Determinism gate: serial vs forced-parallel dispatch must route
    // byte-identically (the sweep's largest sharded config, cheap cells).
    const std::size_t check_shards = shard_counts.back();
    const CellResult serial =
        run_cell(fabric, requests, check_shards, 1, seed);
    const CellResult parallel =
        run_cell(fabric, requests, check_shards, 4, seed);
    if (serial.signature != parallel.signature) {
      deterministic = false;
      std::printf("DETERMINISM VIOLATION at %zu hosts / %zu shards: "
                  "threads=1 and threads=4 decision logs differ\n",
                  hosts, check_shards);
    }
    if (best_sharded_p99 > flat_p99) {
      never_worse = false;
      std::printf("REGRESSION at %zu hosts: best sharded p99 %.2f ms worse "
                  "than flat %.2f ms\n",
                  hosts, best_sharded_p99 / 1000.0, flat_p99 / 1000.0);
    }
    if (hosts == 640) {
      gate_flat_p99 = flat_p99;
      gate_best_sharded_p99 = best_sharded_p99;
    }
  }

  std::printf("%s", table.to_string().c_str());
  write_file(out_dir() / "shard_scaling.csv", table.to_csv());

  bool speedup_ok = true;
  if (!smoke && gate_best_sharded_p99 > 0.0) {
    speedup_ok = gate_flat_p99 >= 4.0 * gate_best_sharded_p99;
    std::printf("\n640-host gate: flat p99 %.2f ms vs best sharded %.2f ms "
                "(%.1fx, need >= 4x) %s\n",
                gate_flat_p99 / 1000.0, gate_best_sharded_p99 / 1000.0,
                gate_flat_p99 / std::max(gate_best_sharded_p99, 1e-9),
                speedup_ok ? "ok" : "FAILED");
  }
  std::printf("\nMeasured finding: per-admission latency follows the shard "
              "size, not the fabric size — the superlinear Networking cost "
              "(E10) is paid on a 1/k-scale graph, so the p99 gap widens "
              "with the fabric while P2C keeps the admitted fraction close "
              "to flat.\n");
  std::printf("checks: determinism %s, sharded-never-worse %s%s\n",
              deterministic ? "ok" : "FAILED",
              never_worse ? "ok" : "FAILED",
              smoke ? "" : (speedup_ok ? ", 640-host 4x gate ok"
                                       : ", 640-host 4x gate FAILED"));
  return (deterministic && never_worse && speedup_ok) ? 0 : 1;
}
