// E1 — regenerates the paper's **Table 2**: mean objective function
// (load-balance factor, Eq. 10) for each scenario x cluster x heuristic,
// plus the total failure count per heuristic per cluster.
//
// Expected shape (paper Section 5.2):
//   * HMN achieves the lowest objective everywhere it succeeds, with its
//     margin over RA shrinking as the guest:host ratio grows (no migration
//     headroom on packed hosts);
//   * the DFS-based mappers (R, HS) fail heavily on the torus — naive DFS
//     paths wander beyond the latency bound — and succeed on the switched
//     cluster, where the only path is the 2-hop switch route;
//   * the A*Prune-based mappers (HMN, RA) almost never fail: "the main
//     responsible for the success in finding a mapping ... is the A*Prune
//     algorithm."
// Absolute magnitudes differ from the paper's (see EXPERIMENTS.md: the
// published values exceed the mathematical maximum of Eq. 10 under the
// published Table 1 parameters, so only orderings are reproducible).
#include "bench_common.h"

#include <map>

#include "util/stats.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  const auto spec = paper_grid();
  const PaperMappers mappers(bench_tries());
  std::printf("Table 2 grid: %zu scenarios x %zu clusters x %zu mappers x "
              "%zu reps (HMN_BENCH_REPS/_TRIES/_SEED to adjust)\n",
              spec.scenarios.size(), spec.clusters.size(),
              mappers.all().size(), spec.repetitions);

  const auto records = expfw::run_grid(spec, mappers.all());
  const auto summary = expfw::summarize(records);
  const auto table = expfw::render_objective_table(
      spec.scenarios, spec.clusters, PaperMappers::names(), summary);

  std::printf("\nTable 2 — objective function (Eq. 10) and failures:\n%s",
              table.to_string().c_str());
  write_file(out_dir() / "table2_objective.csv", table.to_csv());

  // Sanity summary of the headline orderings.
  std::size_t hmn_best = 0, rows = 0;
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    for (const auto kind : spec.clusters) {
      const auto& hmn_cell = summary.cell(s, kind, "HMN");
      if (hmn_cell.objective.count() == 0) continue;
      ++rows;
      bool best = true;
      for (const auto& name : {"R", "RA", "HS"}) {
        const auto& cell = summary.cell(s, kind, name);
        if (cell.objective.count() > 0 &&
            cell.objective.mean() < hmn_cell.objective.mean()) {
          best = false;
        }
      }
      hmn_best += best ? 1 : 0;
    }
  }
  std::printf("\nHMN has the best objective in %zu of %zu populated rows\n",
              hmn_best, rows);
  for (const auto kind : spec.clusters) {
    for (const auto& name : PaperMappers::names()) {
      std::printf("  failures %-9s %-4s: %zu\n", to_string(kind),
                  name.c_str(), summary.total_failures(kind, name));
    }
  }

  // Statistical backing for the headline comparison: paired bootstrap CI
  // of (RA - HMN) objective per scenario on the switched cluster (where
  // both mappers succeed on every repetition).  A CI excluding zero means
  // HMN's advantage is significant at 95%.
  std::printf("\npaired bootstrap 95%% CI of objective difference RA - HMN "
              "(switched cluster):\n");
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    // Collect paired samples by repetition.
    std::map<std::size_t, std::pair<double, double>> by_rep;  // rep -> (hmn, ra)
    for (const auto& r : records) {
      if (r.scenario_index != s ||
          r.cluster != workload::ClusterKind::kSwitched || !r.ok) {
        continue;
      }
      if (r.mapper == "HMN") by_rep[r.repetition].first = r.objective;
      if (r.mapper == "RA") by_rep[r.repetition].second = r.objective;
    }
    std::vector<double> hmn_obj, ra_obj;
    for (const auto& [rep, pair] : by_rep) {
      if (pair.first > 0.0 && pair.second > 0.0) {
        hmn_obj.push_back(pair.first);
        ra_obj.push_back(pair.second);
      }
    }
    if (hmn_obj.size() < 3) continue;
    const auto ci = util::bootstrap_paired_diff_ci(ra_obj, hmn_obj);
    const bool significant = ci.lo > 0.0 || ci.hi < 0.0;
    std::printf("  %-12s  diff %+8.1f  CI [%+8.1f, %+8.1f]  %s\n",
                spec.scenarios[s].label().c_str(),
                util::mean(ra_obj) - util::mean(hmn_obj), ci.lo, ci.hi,
                significant ? "significant" : "n.s.");
  }
  return 0;
}
