// E4 — reproduces the paper's Section 5.2 correlation claim: "we found a
// correlation of 0.7 between the objective function and the execution time
// of the experiment in the simulated environment."
//
// Method: across mappings of *varying quality* (the four heuristics, over
// repetitions of the high-level scenarios), simulate the same synthetic
// BSP distributed application on each valid mapping and compute the
// Pearson correlation between the mapping's load-balance factor (Eq. 10)
// and the simulated experiment makespan.
//
// Mechanism being exercised: an unbalanced mapping oversubscribes some
// host's CPU; its guests compute slower, their BSP neighbors wait, and the
// makespan stretches — exactly why the paper optimizes Eq. 10.
#include "bench_common.h"
#include "extensions/min_hosts_mapper.h"
#include "util/csv.h"
#include "core/objective.h"
#include "sim/master_worker.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  expfw::GridSpec spec = paper_grid(/*simulate_experiment=*/true);
  // High-level scenarios only: the paper's correlation experiment targets
  // application-level workloads; this also keeps DES sizes moderate.
  spec.scenarios.resize(12);
  // Scale guest CPU demand into the contention regime (see Scenario::
  // vproc_scale): with Table 1's raw values no host is ever oversubscribed
  // and every mapping runs the experiment at the same speed, which would
  // make the paper's correlation claim unmeasurable by construction.  The
  // paper's own objective magnitudes (thousands of MIPS of residual-CPU
  // stddev) are only reachable with deeply negative residuals, i.e. heavy
  // oversubscription, so this regime matches the published evaluation.
  for (auto& scenario : spec.scenarios) scenario.vproc_scale = 6.0;
  // Low jitter so the CPU-contention signal is not drowned by per-guest
  // noise; modest messages so compute dominates, as in the paper's
  // compute-bound grid workloads.
  spec.experiment.jitter_fraction = 0.05;
  spec.experiment.message_kb = 16.0;
  // The mapper set spans the full quality range — the paper's four
  // heuristics plus the consolidating MinHosts mapper, whose deliberately
  // unbalanced placements anchor the high-objective end.
  const PaperMappers paper_mappers(bench_tries());
  const extensions::MinHostsMapper min_hosts;
  auto mappers = paper_mappers.all();
  mappers.push_back(&min_hosts);
  std::printf("correlation grid: %zu scenarios x %zu clusters x %zu mappers "
              "x %zu reps, with experiment simulation\n",
              spec.scenarios.size(), spec.clusters.size(), mappers.size(),
              spec.repetitions);

  const auto records = expfw::run_grid(spec, mappers);

  // Correlate per scenario-cluster cell (pooling across scenarios would
  // conflate instance size with balance), then report the pooled
  // correlation over standardized pairs and the per-cell mean.
  std::vector<double> cell_correlations;
  std::vector<double> all_obj, all_time;
  util::CsvWriter csv((out_dir() / "correlation_pairs.csv").string());
  csv.row({"scenario", "cluster", "mapper", "rep", "objective",
           "experiment_seconds"});

  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    for (const auto kind : spec.clusters) {
      std::vector<double> obj, time;
      for (const auto& r : records) {
        if (r.scenario_index != s || r.cluster != kind || !r.ok ||
            r.experiment_seconds < 0.0) {
          continue;
        }
        obj.push_back(r.objective);
        time.push_back(r.experiment_seconds);
        csv.row({spec.scenarios[s].label(), to_string(kind), r.mapper,
                 std::to_string(r.repetition),
                 util::CsvWriter::num(r.objective),
                 util::CsvWriter::num(r.experiment_seconds)});
      }
      if (obj.size() >= 8) {
        const double rho = util::pearson(obj, time);
        cell_correlations.push_back(rho);
        std::printf("  %-12s %-9s: n=%3zu  rho=%+.3f\n",
                    spec.scenarios[s].label().c_str(), to_string(kind),
                    obj.size(), rho);
        // Standardize within the cell and pool.
        const double mo = util::mean(obj), so = util::stddev_sample(obj);
        const double mt = util::mean(time), st = util::stddev_sample(time);
        if (so > 0 && st > 0) {
          for (std::size_t i = 0; i < obj.size(); ++i) {
            all_obj.push_back((obj[i] - mo) / so);
            all_time.push_back((time[i] - mt) / st);
          }
        }
      }
    }
  }

  // Raw pooled correlation over every valid simulated run — the paper's
  // single-number method ("a correlation of 0.7"), which also picks up the
  // shared growth of objective and runtime with instance size.
  std::vector<double> raw_obj, raw_time;
  for (const auto& r : records) {
    if (r.ok && r.experiment_seconds >= 0.0) {
      raw_obj.push_back(r.objective);
      raw_time.push_back(r.experiment_seconds);
    }
  }
  const double raw_pooled = util::pearson(raw_obj, raw_time);
  const double pooled = util::pearson(all_obj, all_time);
  const double mean_cell = util::mean(cell_correlations);
  std::printf("\nraw pooled correlation (paper's method): %+.3f over %zu "
              "runs\n", raw_pooled, raw_obj.size());
  std::printf("pooled within-cell-standardized:          %+.3f over %zu "
              "pairs\n", pooled, all_obj.size());
  std::printf("mean per-cell correlation:                %+.3f over %zu "
              "cells\n", mean_cell, cell_correlations.size());
  std::printf("paper reports rho = 0.7; a positive, substantial raw pooled "
              "correlation reproduces the claim.\n");

  // Second application pattern: a master-worker farm (the grid parameter-
  // sweep shape).  A star virtual environment (one coordinator, 200
  // workers) is mapped by each heuristic; the farm's makespan is driven by
  // the slowest workers — i.e. by how evenly the mapper spread CPU load —
  // so its correlation with Eq. 10 cross-checks the BSP result under a
  // different communication structure.
  {
    std::vector<double> farm_obj, farm_time;
    for (std::size_t rep = 0; rep < spec.repetitions; ++rep) {
      const auto seed = util::derive_seed(env_seed(), 777, rep);
      const auto cluster = workload::make_paper_cluster(
          workload::ClusterKind::kSwitched, seed);
      util::Rng rng(seed + 1);
      model::VirtualEnvironment venv;
      const GuestId master = venv.add_guest({300, 192, 150});
      for (int w = 0; w < 200; ++w) {
        const GuestId worker = venv.add_guest(
            {6.0 * rng.uniform(50, 100), rng.uniform(128, 256),
             rng.uniform(100, 200)});
        venv.add_link(master, worker, {rng.uniform(0.5, 1.0), 60.0});
      }
      for (const core::Mapper* m : mappers) {
        const auto out = m->map(cluster, venv, seed);
        if (!out.ok()) continue;
        sim::MasterWorkerSpec farm;
        farm.tasks = 800;
        farm.seed = seed;
        const auto r =
            sim::run_master_worker(cluster, venv, *out.mapping, farm);
        farm_obj.push_back(
            core::load_balance_factor(cluster, venv, *out.mapping));
        farm_time.push_back(r.makespan_seconds);
      }
    }
    std::printf("\nmaster-worker farm cross-check: rho = %+.3f over %zu "
                "runs\n",
                util::pearson(farm_obj, farm_time), farm_obj.size());
  }
  std::printf("wrote %s\n",
              (out_dir() / "correlation_pairs.csv").string().c_str());
  return 0;
}
