// E13 — availability under substrate failures (extension; the paper's
// motivation for emulation is that real testbeds misbehave, Section 1).
//
// The E12 churn workload runs against the paper's switched cluster while
// hosts and links fail and recover as independent alternating-renewal
// processes (exponential MTTF/MTTR, workload::generate_failures).  Two
// policies react to every failure:
//
//   repair        the Healer's transactional surgery: re-route around dead
//                 links, re-place only the guests of dead hosts, keep
//                 tenants whose links cannot route in the Degraded state,
//                 park true evictions with exponential backoff;
//   drop-readmit  the literature's baseline: evict every impacted tenant
//                 wholesale and re-admit it from scratch.
//
// Why repair wins on a switched cluster: every host hangs off the fabric
// by few links, so a link failure leaves guests healthy but paths
// unroutable — repair keeps the tenant Degraded (experiment state intact,
// zero tenant-minutes lost) where drop-readmit evicts it into a cluster
// already at capacity and usually cannot put it back.
//
// Reported per (host-MTTF, policy) cell: tenant-minutes lost (absence
// windows of evicted tenants), degraded-minutes (retained but dark),
// in-place heals / degradations / evictions / re-admissions / drops, and
// healing latency p50/p99.  Exits nonzero if any invariant-auditor
// violation appears, if replaying a recorded failure trace diverges, or if
// healing retains fewer tenant-minutes than drop-and-readmit on any seed
// base.  `--smoke` runs a reduced grid with the same checks for CI.
//
// E15 (`--e15`) — correlated blast-radius failures vs availability-aware
// admission.  The failure stream is blast-only (a switch and its attached
// subtree fail atomically, Weibull MTTF) and both orchestrators heal with
// the same repair policy; they differ only in admission: *aware* biases
// placement by per-element EWMA availability and reserves spare-capacity
// headroom for healing, *blind* is the stock admission path.  Under
// repeated blasts the flaky racks accumulate low availability, aware
// admission routes new tenants around them, and the next blast strands
// fewer tenants.  Gates: aware must lose strictly fewer tenant-minutes
// than blind in aggregate over the sweep; with failures disabled the two
// must produce byte-identical decision signatures (the invisibility
// invariant); and a recorded v3 trace must replay to the live signature.
#include "bench_common.h"

#include <string_view>

#include "io/trace.h"
#include "orchestrator/orchestrator.h"
#include "topology/topologies.h"
#include "util/stats.h"
#include "workload/host_generator.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;

extensions::HeuristicPool hmn_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return pool;
}

double total_cluster_mem(const model::PhysicalCluster& cluster) {
  double total = 0.0;
  for (const NodeId h : cluster.hosts()) total += cluster.capacity(h).mem_mb;
  return total;
}

workload::ChurnOptions churn_options(double load, double horizon,
                                     const model::PhysicalCluster& cluster) {
  workload::ChurnOptions opts;
  opts.horizon = horizon;
  opts.mean_lifetime = 10.0;
  opts.lifetime = workload::LifetimeDistribution::kPareto;
  opts.min_guests = 4;
  opts.max_guests = 10;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};  // host-scale VMs, as in E11/E12
  opts.grow_probability = 0.1;
  opts.max_grow_guests = 2;

  const double mean_guests =
      0.5 * static_cast<double>(opts.min_guests + opts.max_guests);
  const double mean_tenant_mem =
      mean_guests * 0.5 * (opts.profile.mem_mb.lo + opts.profile.mem_mb.hi);
  opts.arrival_rate = load * total_cluster_mem(cluster) /
                      (opts.mean_lifetime * mean_tenant_mem);
  return opts;
}

workload::ChurnTrace make_failure_trace(const model::PhysicalCluster& cluster,
                                        double load, double horizon,
                                        double host_mttf, double link_mttf,
                                        std::uint64_t seed) {
  const auto copts = churn_options(load, horizon, cluster);
  workload::ChurnTrace trace =
      workload::generate_churn(copts, util::derive_seed(seed, 1));
  workload::FailureOptions fo;
  fo.horizon = horizon;
  fo.host_mttf = host_mttf;
  fo.host_mttr = 4.0;
  fo.link_mttf = link_mttf;
  fo.link_mttr = 4.0;
  workload::merge_events(
      trace, workload::generate_failures(fo, cluster, util::derive_seed(seed, 2)));
  return trace;
}

orchestrator::OrchestratorOptions policy_options(orchestrator::HealPolicy p) {
  orchestrator::OrchestratorOptions opts;
  opts.healer.policy = p;
  return opts;
}

// --- E15: correlated blasts, availability-aware vs blind admission -------

/// The paper's 40-host switched cluster hangs every host off ONE 64-port
/// switch, so a blast there is a total outage and no placement policy can
/// help.  E15 instead racks the same 40 Table-1 hosts under four leaf
/// switches (topology::switch_tree), giving each blast a quarter-fabric
/// radius — the regime where steering admissions between racks matters.
model::PhysicalCluster make_racked_cluster(std::uint64_t seed) {
  util::Rng rng(seed);
  auto caps =
      workload::generate_hosts(40, workload::paper_host_profile(), rng);
  return model::PhysicalCluster::build(topology::switch_tree(40, 10, 4),
                                       std::move(caps),
                                       workload::paper_link_props());
}

workload::ChurnTrace make_blast_trace(const model::PhysicalCluster& cluster,
                                      double load, double horizon,
                                      double blast_mttf, std::uint64_t seed) {
  const auto copts = churn_options(load, horizon, cluster);
  workload::ChurnTrace trace =
      workload::generate_churn(copts, util::derive_seed(seed, 1));
  if (blast_mttf > 0.0) {
    workload::FailureOptions fo;
    fo.horizon = horizon;
    fo.blast_mttf = blast_mttf;
    fo.blast_mttr = 6.0;
    fo.mttf_dist = workload::MttfDistribution::kWeibull;
    workload::merge_events(trace, workload::generate_failures(
                                      fo, cluster, util::derive_seed(seed, 2)));
  }
  return trace;
}

orchestrator::OrchestratorOptions e15_options(bool aware) {
  orchestrator::OrchestratorOptions opts;
  opts.healer.policy = orchestrator::HealPolicy::kRepair;
  opts.availability_aware = aware;
  opts.spare_headroom = 0.1;
  return opts;
}

int run_e15(bool smoke) {
  using namespace hmn::bench;
  const std::size_t bases =
      smoke ? 2 : std::max<std::size_t>(4, bench_reps() / 8);
  const double horizon = smoke ? 60.0 : 100.0;
  const double load = 0.95;
  const std::vector<double> mttfs =
      smoke ? std::vector<double>{25.0} : std::vector<double>{20.0, 40.0};

  std::printf("E15: blast-radius failures, availability-aware vs blind "
              "admission, %zu seed bases%s\n\n",
              bases, smoke ? " (smoke)" : "");

  util::Table table({"blast mttf", "admission", "lost t-min", "degraded t-min",
                     "blasts", "parked", "readmit", "dropped"});

  std::vector<double> lost_aware(bases, 0.0);
  std::vector<double> lost_blind(bases, 0.0);
  std::size_t violations = 0;

  for (std::size_t mi = 0; mi < mttfs.size(); ++mi) {
    for (const bool aware : {true, false}) {
      util::RunningStats lost, degraded_min, blasts, parked, readmitted,
          dropped;
      for (std::size_t base = 0; base < bases; ++base) {
        const auto seed = util::derive_seed(env_seed(), 45, mi, base);
        const auto cluster = make_racked_cluster(seed);
        const auto trace =
            make_blast_trace(cluster, load, horizon, mttfs[mi], seed);
        orchestrator::Orchestrator orch(cluster, trace.profile, hmn_pool(),
                                        e15_options(aware));
        const auto& report = orch.run(trace);

        lost.add(report.tenant_minutes_lost);
        degraded_min.add(report.degraded_minutes);
        blasts.add(static_cast<double>(report.blast_failures));
        parked.add(static_cast<double>(report.parked));
        readmitted.add(static_cast<double>(report.readmitted));
        dropped.add(static_cast<double>(report.heal_dropped));
        violations += report.invariant_violations.size();
        for (const std::string& v : report.invariant_violations) {
          std::printf("INVARIANT VIOLATION [mttf %.0f %s base %zu] %s\n",
                      mttfs[mi], aware ? "aware" : "blind", base, v.c_str());
        }
        (aware ? lost_aware : lost_blind)[base] += report.tenant_minutes_lost;
      }
      table.add_row({util::Table::fmt(mttfs[mi], 0), aware ? "aware" : "blind",
                     util::Table::fmt(lost.mean(), 1),
                     util::Table::fmt(degraded_min.mean(), 1),
                     util::Table::fmt(blasts.mean(), 1),
                     util::Table::fmt(parked.mean(), 1),
                     util::Table::fmt(readmitted.mean(), 1),
                     util::Table::fmt(dropped.mean(), 1)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  write_file(out_dir() / "availability_e15.csv", table.to_csv());

  // Invisibility gate: with the failure stream disabled, aware and blind
  // admission must make byte-identical decisions.
  bool invisible = true;
  {
    const auto seed = util::derive_seed(env_seed(), 46);
    const auto cluster = make_racked_cluster(seed);
    const auto calm = make_blast_trace(cluster, load, horizon, 0.0, seed);
    orchestrator::Orchestrator aware_orch(cluster, calm.profile, hmn_pool(),
                                          e15_options(true));
    orchestrator::Orchestrator blind_orch(cluster, calm.profile, hmn_pool(),
                                          e15_options(false));
    invisible = aware_orch.run(calm).decision_signature() ==
                blind_orch.run(calm).decision_signature();
    std::printf("\ninvisibility (no failures): aware vs blind %s\n",
                invisible ? "identical" : "DIVERGED");
  }

  // Determinism gate: a blast-laden trace must survive v3 record/replay.
  bool replay_ok = true;
  {
    const auto seed = util::derive_seed(env_seed(), 47);
    const auto cluster = make_racked_cluster(seed);
    const auto trace = make_blast_trace(cluster, load, horizon, mttfs[0], seed);
    orchestrator::Orchestrator live(cluster, trace.profile, hmn_pool(),
                                    e15_options(true));
    const std::string sig = live.run(trace).decision_signature();
    const auto reloaded = io::read_trace_or_throw(io::write_trace(trace));
    orchestrator::Orchestrator replayed(cluster, reloaded.profile, hmn_pool(),
                                        e15_options(true));
    replay_ok = replayed.run(reloaded).decision_signature() == sig;
    std::printf("determinism: v3 record/replay %s (%zu decisions)\n",
                replay_ok ? "identical" : "DIVERGED",
                live.report().decisions.size());
  }

  // Win gate: aware must lose strictly fewer tenant-minutes in aggregate.
  double total_aware = 0.0, total_blind = 0.0;
  for (std::size_t base = 0; base < bases; ++base) {
    total_aware += lost_aware[base];
    total_blind += lost_blind[base];
    std::printf("seed base %zu: aware lost %.2f t-min, blind lost %.2f\n",
                base, lost_aware[base], lost_blind[base]);
  }
  const bool wins = total_aware < total_blind;

  std::printf("\nMeasured finding: under correlated blast failures, "
              "availability-aware admission loses %.1f tenant-minutes total "
              "where blind admission loses %.1f — steering new tenants away "
              "from blast-scarred racks (and holding back healing headroom) "
              "shrinks the set a repeat blast strands.\n",
              total_aware, total_blind);
  std::printf("checks: invariant violations %zu, invisibility %s, replay %s, "
              "aware-wins %s\n",
              violations, invisible ? "ok" : "FAILED",
              replay_ok ? "ok" : "FAILED", wins ? "ok" : "FAILED");
  return (violations == 0 && invisible && replay_ok && wins) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmn::bench;
  bool smoke = false;
  bool e15 = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") smoke = true;
    if (arg == "--e15") e15 = true;
  }
  if (e15) return run_e15(smoke);

  const std::size_t bases =
      smoke ? 2 : std::max<std::size_t>(5, bench_reps() / 6);
  const double horizon = smoke ? 50.0 : 80.0;
  const double load = 0.95;
  const double link_mttf = 60.0;
  std::vector<double> mttfs = smoke ? std::vector<double>{60.0}
                                    : std::vector<double>{30.0, 60.0, 120.0};

  std::printf("availability under host/link failures, paper switched "
              "cluster, %zu seed bases%s\n\n",
              bases, smoke ? " (smoke)" : "");

  util::Table table({"host mttf", "policy", "lost t-min", "degraded t-min",
                     "healed", "degraded", "parked", "readmit", "dropped",
                     "heal p50 us", "heal p99 us"});

  // Per-base tenant-minutes lost, summed over the MTTF sweep: the win
  // criterion is per seed base, not just on the mean.
  std::vector<double> lost_repair(bases, 0.0);
  std::vector<double> lost_drop(bases, 0.0);
  std::size_t violations = 0;

  const orchestrator::HealPolicy policies[] = {
      orchestrator::HealPolicy::kRepair,
      orchestrator::HealPolicy::kDropReadmit};
  for (std::size_t mi = 0; mi < mttfs.size(); ++mi) {
    for (const auto policy : policies) {
      const bool repair = policy == orchestrator::HealPolicy::kRepair;
      util::RunningStats lost, degraded_min, healed, degraded, parked,
          readmitted, dropped, p50, p99;
      for (std::size_t base = 0; base < bases; ++base) {
        const auto seed = util::derive_seed(env_seed(), 43, mi, base);
        const auto cluster = workload::make_paper_cluster(
            workload::ClusterKind::kSwitched, seed);
        const auto trace = make_failure_trace(cluster, load, horizon,
                                              mttfs[mi], link_mttf, seed);
        orchestrator::Orchestrator orch(cluster, trace.profile, hmn_pool(),
                                        policy_options(policy));
        const auto& report = orch.run(trace);

        lost.add(report.tenant_minutes_lost);
        degraded_min.add(report.degraded_minutes);
        healed.add(static_cast<double>(report.healed + report.restored));
        degraded.add(static_cast<double>(report.degraded));
        parked.add(static_cast<double>(report.parked));
        readmitted.add(static_cast<double>(report.readmitted));
        dropped.add(static_cast<double>(report.heal_dropped));
        p50.add(util::percentile(report.heal_latencies_us, 50.0));
        p99.add(util::percentile(report.heal_latencies_us, 99.0));
        violations += report.invariant_violations.size();
        for (const std::string& v : report.invariant_violations) {
          std::printf("INVARIANT VIOLATION [mttf %.0f %s base %zu] %s\n",
                      mttfs[mi], repair ? "repair" : "drop", base, v.c_str());
        }
        (repair ? lost_repair : lost_drop)[base] +=
            report.tenant_minutes_lost;
      }
      table.add_row({util::Table::fmt(mttfs[mi], 0),
                     repair ? "repair" : "drop-readmit",
                     util::Table::fmt(lost.mean(), 1),
                     util::Table::fmt(degraded_min.mean(), 1),
                     util::Table::fmt(healed.mean(), 1),
                     util::Table::fmt(degraded.mean(), 1),
                     util::Table::fmt(parked.mean(), 1),
                     util::Table::fmt(readmitted.mean(), 1),
                     util::Table::fmt(dropped.mean(), 1),
                     util::Table::fmt(p50.mean(), 0),
                     util::Table::fmt(p99.mean(), 0)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  write_file(out_dir() / "availability.csv", table.to_csv());

  // Determinism: a failure-laden trace must record -> JSONL -> replay to
  // bit-identical decisions (healing included).
  bool replay_ok = true;
  {
    const auto seed = util::derive_seed(env_seed(), 44);
    const auto cluster =
        workload::make_paper_cluster(workload::ClusterKind::kSwitched, seed);
    const auto trace = make_failure_trace(cluster, load, horizon, mttfs[0],
                                          link_mttf, seed);
    const auto opts = policy_options(orchestrator::HealPolicy::kRepair);
    orchestrator::Orchestrator first(cluster, trace.profile, hmn_pool(), opts);
    orchestrator::Orchestrator second(cluster, trace.profile, hmn_pool(),
                                      opts);
    const std::string sig = first.run(trace).decision_signature();
    const bool rerun_ok = second.run(trace).decision_signature() == sig;

    const auto reloaded = io::read_trace_or_throw(io::write_trace(trace));
    orchestrator::Orchestrator replayed(cluster, reloaded.profile, hmn_pool(),
                                        opts);
    replay_ok = rerun_ok &&
                replayed.run(reloaded).decision_signature() == sig;
    std::printf("\ndeterminism: fresh re-run %s, JSONL record/replay %s "
                "(%zu decisions, %zu heal records)\n",
                rerun_ok ? "identical" : "DIVERGED",
                replay_ok ? "identical" : "DIVERGED",
                first.report().decisions.size(),
                first.report().heal_latencies_us.size());
  }

  // Healing must retain at least as many tenant-minutes as drop-and-readmit
  // on EVERY seed base, and strictly more in aggregate.
  bool wins = true;
  double total_repair = 0.0, total_drop = 0.0;
  for (std::size_t base = 0; base < bases; ++base) {
    total_repair += lost_repair[base];
    total_drop += lost_drop[base];
    if (lost_repair[base] > lost_drop[base] + 1e-9) {
      wins = false;
      std::printf("seed base %zu: repair lost %.2f t-min vs drop %.2f — "
                  "healing LOST\n",
                  base, lost_repair[base], lost_drop[base]);
    }
  }
  if (total_drop > 0.0 && !(total_repair < total_drop)) wins = false;

  std::printf("\nMeasured finding: over the MTTF sweep, transactional "
              "healing loses %.1f tenant-minutes total where "
              "drop-and-readmit loses %.1f; on the switched fabric a dead "
              "access link strands paths, not guests, so repair keeps the "
              "tenant (Degraded at worst) while the baseline evicts into a "
              "full cluster.\n",
              total_repair, total_drop);
  std::printf("checks: invariant violations %zu, replay %s, per-base win "
              "%s\n",
              violations, replay_ok ? "ok" : "FAILED",
              wins ? "ok" : "FAILED");
  return (violations == 0 && replay_ok && wins) ? 0 : 1;
}
