// E16 — multilevel coarsen–map–refine vs flat HMN admission at scale.
//
// E10/E14 established that flat admission cost grows superlinearly with
// fabric size (host re-sorts plus A*Prune on the full graph).  The
// multilevel mapper (src/multilevel) attacks the same problem without
// sharding: coarsen the fabric once into a structural pyramid, solve the
// paper's stages on the coarsest level, then refine locally.  E16 sweeps
// switch-tree fabrics of {1000, 4000, 10000} hosts, admits the same tenant
// workload through a flat HmnMapper and a MultilevelMapper sharing a
// prebuilt hierarchy (exactly how the PlacementRouter deploys it), and
// reports per-admission latency, speedup, and objective (Eq. 10) deltas.
//
// Gates (exit nonzero on violation):
//   * validity — every multilevel mapping passes core::validate_mapping;
//   * determinism — re-running an admission reproduces a byte-identical
//     mapping fingerprint (core::fingerprint);
//   * coverage — multilevel succeeds whenever flat does, and the pyramid
//     (levels_used > 0) carries at least one admission per size;
//   * quality — median relative objective delta within 5% of flat;
//   * full run only: >= 5x median admission speedup at 10000 hosts.
// `--smoke` runs the 1000-host row with reduced repetitions for CI.
#include "bench_common.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "core/objective.h"
#include "core/validator.h"
#include "graph/dijkstra.h"
#include "multilevel/multilevel_mapper.h"
#include "topology/topologies.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/host_generator.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;

/// Hop diameter of a tree fabric by double sweep (exact on trees).
double tree_hop_diameter(const graph::Graph& g) {
  auto unit = [](EdgeId) { return 1.0; };
  auto farthest = [&](NodeId from) {
    const auto sp = graph::dijkstra(g, from, unit);
    std::size_t best = 0;
    for (std::size_t v = 1; v < g.node_count(); ++v) {
      if (sp.dist[v] > sp.dist[best]) best = v;
    }
    return std::pair{NodeId{static_cast<NodeId::underlying_type>(best)},
                     sp.dist[best]};
  };
  const auto [turn, _] = farthest(NodeId{0});
  return std::max(1.0, farthest(turn).second);
}

model::PhysicalCluster make_fabric(std::size_t hosts, std::uint64_t seed) {
  auto topo = topology::switch_tree(hosts, 8, 4);
  // Keep the workload's latency envelope satisfiable at every size (E10's
  // convention): per-hop latency scales down with the tree diameter.
  model::LinkProps link = workload::paper_link_props();
  link.latency_ms = std::min(5.0, 30.0 / tree_hop_diameter(topo.graph));
  util::Rng rng(seed);
  auto caps =
      workload::generate_hosts(hosts, workload::paper_host_profile(), rng);
  return model::PhysicalCluster::build(std::move(topo), std::move(caps),
                                       link);
}

model::VirtualEnvironment make_tenant(const model::PhysicalCluster& fabric,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  workload::GuestProfile profile = workload::high_level_profile();
  profile.mem_mb = {512.0, 1536.0};
  workload::VenvGenOptions vopts;
  vopts.guest_count = 24 + rng.index(25);  // 24-48 guests
  vopts.density = 0.2;
  vopts.profile = profile;
  vopts.normalize_to = &fabric;
  return workload::generate_venv(vopts, rng);
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

struct SizeResult {
  double hierarchy_seconds = 0.0;
  double median_flat_ms = 0.0;
  double median_ml_ms = 0.0;
  double median_speedup = 0.0;
  double median_obj_delta = 0.0;  // relative to flat, signed
  std::size_t flat_ok = 0;
  std::size_t ml_ok = 0;
  std::size_t pyramid_used = 0;
  std::size_t reps = 0;
  bool valid = true;
  bool deterministic = true;
  bool covered = true;
};

SizeResult run_size(std::size_t hosts, std::size_t reps,
                    std::uint64_t seed) {
  SizeResult out;
  out.reps = reps;
  const auto fabric = make_fabric(hosts, util::derive_seed(seed, 1));

  const core::HmnMapper flat;
  multilevel::MultilevelOptions mopts;
  util::Timer hier_timer;
  auto hier = std::make_shared<const multilevel::PhysicalHierarchy>(
      multilevel::build_hierarchy(fabric, mopts.phys));
  out.hierarchy_seconds = hier_timer.elapsed_seconds();
  const multilevel::MultilevelMapper ml(mopts, hier);

  std::vector<double> flat_ms, ml_ms, speedups, obj_deltas;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto venv = make_tenant(fabric, util::derive_seed(seed, 2, rep));
    const std::uint64_t map_seed = util::derive_seed(seed, 3, rep);

    util::Timer t_flat;
    const core::MapOutcome flat_out = flat.map(fabric, venv, map_seed);
    const double flat_t = t_flat.elapsed_seconds();

    util::Timer t_ml;
    const core::MapOutcome ml_out = ml.map(fabric, venv, map_seed);
    const double ml_t = t_ml.elapsed_seconds();

    if (flat_out.ok()) ++out.flat_ok;
    if (!ml_out.ok()) {
      if (flat_out.ok()) {
        out.covered = false;
        std::printf("COVERAGE VIOLATION %zu hosts rep %zu: flat admitted, "
                    "multilevel rejected (%s)\n",
                    hosts, rep, ml_out.detail.c_str());
      }
      continue;
    }
    ++out.ml_ok;
    if (ml_out.stats.levels_used > 0) ++out.pyramid_used;

    const auto report = core::validate_mapping(fabric, venv, *ml_out.mapping);
    if (!report.ok()) {
      out.valid = false;
      std::printf("VALIDITY VIOLATION %zu hosts rep %zu: %s\n", hosts, rep,
                  report.summary().c_str());
    }
    const core::MapOutcome again = ml.map(fabric, venv, map_seed);
    if (!again.ok() || core::fingerprint(*again.mapping) !=
                           core::fingerprint(*ml_out.mapping)) {
      out.deterministic = false;
      std::printf("DETERMINISM VIOLATION %zu hosts rep %zu: repeated "
                  "admission produced a different mapping\n",
                  hosts, rep);
    }

    flat_ms.push_back(flat_t * 1e3);
    ml_ms.push_back(ml_t * 1e3);
    if (flat_out.ok()) {
      speedups.push_back(flat_t / std::max(ml_t, 1e-9));
      const double obj_flat =
          core::load_balance_factor(fabric, venv, *flat_out.mapping);
      const double obj_ml =
          core::load_balance_factor(fabric, venv, *ml_out.mapping);
      obj_deltas.push_back((obj_ml - obj_flat) /
                           std::max(obj_flat, 1e-12));
    }
  }
  out.median_flat_ms = median(flat_ms);
  out.median_ml_ms = median(ml_ms);
  out.median_speedup = median(speedups);
  out.median_obj_delta = median(obj_deltas);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmn::bench;
  const bool smoke = argc > 1 && std::string_view(argv[1]) == "--smoke";

  const std::vector<std::size_t> host_sizes =
      smoke ? std::vector<std::size_t>{1000}
            : std::vector<std::size_t>{1000, 4000, 10000};
  const std::size_t reps =
      smoke ? std::min<std::size_t>(bench_reps(), 5) : bench_reps();

  std::printf("multilevel vs flat admission, switch-tree fabrics%s\n\n",
              smoke ? " (smoke)" : "");
  util::Table table({"hosts", "hier ms", "flat ms", "ml ms", "speedup",
                     "obj delta", "pyramid", "admitted"});

  bool valid = true, deterministic = true, covered = true;
  bool pyramid_ok = true, quality_ok = true;
  double speedup_at_10k = 0.0;

  for (const std::size_t hosts : host_sizes) {
    const SizeResult r =
        run_size(hosts, reps, util::derive_seed(env_seed(), 16, hosts));
    valid = valid && r.valid;
    deterministic = deterministic && r.deterministic;
    covered = covered && r.covered;
    if (r.pyramid_used == 0) {
      pyramid_ok = false;
      std::printf("PYRAMID VIOLATION at %zu hosts: every admission fell "
                  "back to the flat mapper\n",
                  hosts);
    }
    if (std::abs(r.median_obj_delta) > 0.05) {
      quality_ok = false;
      std::printf("QUALITY VIOLATION at %zu hosts: median objective delta "
                  "%+.2f%% exceeds 5%%\n",
                  hosts, 100.0 * r.median_obj_delta);
    }
    if (hosts == 10000) speedup_at_10k = r.median_speedup;
    table.add_row(
        {std::to_string(hosts), util::Table::fmt(r.hierarchy_seconds * 1e3, 1),
         util::Table::fmt(r.median_flat_ms, 2),
         util::Table::fmt(r.median_ml_ms, 2),
         util::Table::fmt(r.median_speedup, 1) + "x",
         util::Table::fmt(100.0 * r.median_obj_delta, 2) + "%",
         std::to_string(r.pyramid_used) + "/" + std::to_string(r.ml_ok),
         std::to_string(r.ml_ok) + "/" + std::to_string(r.reps)});
  }

  std::printf("%s", table.to_string().c_str());
  write_file(out_dir() / "multilevel.csv", table.to_csv());

  bool speedup_ok = true;
  if (!smoke) {
    speedup_ok = speedup_at_10k >= 5.0;
    std::printf("\n10000-host gate: %.1fx median speedup (need >= 5x) %s\n",
                speedup_at_10k, speedup_ok ? "ok" : "FAILED");
  }
  std::printf("\nMeasured finding: admission cost follows the refinement "
              "frontier, not the fabric — the coarse solve runs on a "
              "bounded pyramid tip and each expansion touches one rack "
              "neighborhood, so the flat mapper's fabric-wide re-sorts and "
              "A*Prune sweeps drop out of the per-admission path.\n");
  std::printf("checks: validity %s, determinism %s, coverage %s, pyramid %s, "
              "quality %s%s\n",
              valid ? "ok" : "FAILED", deterministic ? "ok" : "FAILED",
              covered ? "ok" : "FAILED", pyramid_ok ? "ok" : "FAILED",
              quality_ok ? "ok" : "FAILED",
              smoke ? "" : (speedup_ok ? ", 10k 5x gate ok"
                                       : ", 10k 5x gate FAILED"));
  return (valid && deterministic && covered && pyramid_ok && quality_ok &&
          speedup_ok)
             ? 0
             : 1;
}
