// E6 — ablation: link-ordering policy in the Hosting and Networking stages
// (Section 4.1's rationale: "the assignment starts from guests whose links
// have high bandwidth" so heavy links are co-located first and, in the
// Networking stage, routed while the fabric is still wide).
//
// Compares descending-bandwidth (the paper), ascending, and random
// ordering, plus the path-finder ablation A*Prune vs pruned DFS vs the
// bottleneck-blind naive DFS, on a bandwidth-tight torus workload where
// ordering decisions actually matter.
#include "bench_common.h"

#include "core/objective.h"
#include "core/validator.h"
#include "util/stats.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;

/// A deliberately bandwidth-tight instance: high-level guests whose links
/// are scaled up until aggregate demand stresses the torus edges.
model::VirtualEnvironment tight_venv(const model::PhysicalCluster& cluster,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  workload::VenvGenOptions opts;
  opts.guest_count = 200;
  opts.density = 0.02;
  opts.profile = workload::high_level_profile();
  opts.profile.link_bw_mbps = {15.0, 30.0};  // ~30x the paper's demand
  opts.normalize_to = &cluster;
  return workload::generate_venv(opts, rng);
}

}  // namespace

int main() {
  using namespace hmn::bench;

  const std::size_t reps = std::max<std::size_t>(bench_reps() / 3, 5);
  struct Variant {
    const char* name;
    core::HmnOptions opts;
  };
  std::vector<Variant> variants;
  for (const auto& [label, order] :
       std::initializer_list<std::pair<const char*, core::LinkOrder>>{
           {"desc (paper)", core::LinkOrder::kBandwidthDescending},
           {"ascending", core::LinkOrder::kBandwidthAscending},
           {"random", core::LinkOrder::kRandom}}) {
    core::HmnOptions o;
    o.hosting.order = order;
    o.networking.order = order;
    variants.push_back({label, o});
  }
  core::HmnOptions no_affinity;
  no_affinity.hosting.policy = core::HostingPolicy::kBalanceOnly;
  variants.push_back({"balance-only hosting", no_affinity});
  core::HmnOptions min_latency;
  min_latency.networking.algorithm = core::PathAlgorithm::kMinLatency;
  variants.push_back({"desc + min-latency", min_latency});
  core::HmnOptions pruned_dfs;
  pruned_dfs.networking.algorithm = core::PathAlgorithm::kDfsPruned;
  variants.push_back({"desc + pruned DFS", pruned_dfs});
  core::HmnOptions naive_dfs;
  naive_dfs.networking.algorithm = core::PathAlgorithm::kDfsNaive;
  naive_dfs.networking.randomize_dfs = true;
  variants.push_back({"desc + naive DFS", naive_dfs});

  util::Table table({"variant", "success", "lbf (mean)",
                     "bottleneck min bw (mean)", "map time (s)"});
  std::printf("ordering/path-finder ablation on a bandwidth-tight torus "
              "instance, %zu reps\n", reps);

  for (const auto& variant : variants) {
    const core::HmnMapper mapper(variant.opts);
    std::size_t successes = 0;
    util::RunningStats lbf, min_bw, time;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto seed = util::derive_seed(env_seed(), 99, rep);
      const auto cluster = workload::make_paper_cluster(
          workload::ClusterKind::kTorus2D, seed);
      const auto venv = tight_venv(cluster, seed + 1);
      const auto out = mapper.map(cluster, venv, seed);
      if (!out.ok()) continue;
      if (!core::validate_mapping(cluster, venv, *out.mapping).ok()) continue;
      ++successes;
      lbf.add(core::load_balance_factor(cluster, venv, *out.mapping));
      time.add(out.stats.total_seconds);
      // Worst residual bandwidth across physical links: how much headroom
      // the path-finder preserved.
      core::ResidualState st(cluster, venv, *out.mapping);
      double worst = 1e18;
      for (std::size_t e = 0; e < cluster.link_count(); ++e) {
        worst = std::min(worst, st.residual_bw(EdgeId{
            static_cast<EdgeId::underlying_type>(e)}));
      }
      min_bw.add(worst);
    }
    table.add_row({variant.name,
                   std::to_string(successes) + "/" + std::to_string(reps),
                   successes ? util::Table::fmt(lbf.mean(), 1) : "-",
                   successes ? util::Table::fmt(min_bw.mean(), 1) : "-",
                   successes ? util::Table::fmt(time.mean(), 4) : "-"});
  }
  std::printf("\n%s", table.to_string().c_str());
  write_file(out_dir() / "ablation_ordering.csv", table.to_csv());
  std::printf("\nExpected: descending order + A*Prune keeps the most "
              "bottleneck headroom and the highest success rate;\n"
              "ascending/random orderings and DFS path-finders strand "
              "heavy links on saturated edges.\n");

  // Section 5.2's affinity claim, quantified: instances where some virtual
  // links demand *more* than any physical link's 1 Gbps can only be mapped
  // by co-locating those links' endpoints.
  std::size_t affinity_ok = 0, blind_ok = 0;
  const core::HmnMapper affinity_mapper;
  core::HmnOptions blind;
  blind.hosting.policy = core::HostingPolicy::kBalanceOnly;
  const core::HmnMapper blind_mapper(blind);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto seed = util::derive_seed(env_seed(), 123, rep);
    const auto cluster = workload::make_paper_cluster(
        workload::ClusterKind::kTorus2D, seed);
    util::Rng rng(seed + 1);
    workload::VenvGenOptions opts;
    opts.guest_count = 100;
    opts.density = 0.02;
    opts.profile = workload::high_level_profile();
    opts.normalize_to = &cluster;
    auto venv = workload::generate_venv(opts, rng);
    // Add over-capacity pair links: 1.5-3 Gbps between fresh guest pairs.
    for (int i = 0; i < 10; ++i) {
      const GuestId a = venv.add_guest({75, 192, 150});
      const GuestId b = venv.add_guest({75, 192, 150});
      venv.add_link(a, b, {rng.uniform(1500.0, 3000.0), 60.0});
    }
    affinity_ok += affinity_mapper.map(cluster, venv, seed).ok() ? 1u : 0u;
    blind_ok += blind_mapper.map(cluster, venv, seed).ok() ? 1u : 0u;
  }
  std::printf("\nover-capacity links (10 links of 1.5-3 Gbps on a 1 Gbps "
              "fabric): affinity hosting %zu/%zu, link-blind hosting "
              "%zu/%zu\n", affinity_ok, reps, blind_ok, reps);
  return 0;
}
