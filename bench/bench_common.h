// Shared plumbing for the table/figure benchmark harnesses.
//
// Environment knobs (all optional):
//   HMN_BENCH_REPS   repetitions per cell       (default 30, the paper's)
//   HMN_BENCH_TRIES  retry budget for R/RA/HS   (default 50; the paper uses
//                    100 000, which only adds time on the structurally
//                    infeasible instances — see EXPERIMENTS.md)
//   HMN_BENCH_SEED   master seed                (default 20090922)
//   HMN_BENCH_OUT    directory for CSV exports  (default "bench_out")
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/composite_mappers.h"
#include "core/hmn_mapper.h"
#include "expfw/aggregate.h"
#include "expfw/report.h"
#include "expfw/runner.h"

namespace hmn::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline std::uint64_t env_seed() {
  const char* v = std::getenv("HMN_BENCH_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 20090922ULL;
}

inline std::size_t bench_reps() { return env_size("HMN_BENCH_REPS", 30); }
inline std::size_t bench_tries() { return env_size("HMN_BENCH_TRIES", 50); }

inline std::filesystem::path out_dir() {
  const char* v = std::getenv("HMN_BENCH_OUT");
  std::filesystem::path dir = v != nullptr ? v : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void write_file(const std::filesystem::path& path,
                       const std::string& contents) {
  std::ofstream out(path);
  out << contents;
  std::printf("wrote %s\n", path.string().c_str());
}

/// The paper's four Table 2/3 heuristics, in column order.
struct PaperMappers {
  core::HmnMapper hmn;
  baselines::RandomDfsMapper r;
  baselines::RandomAStarMapper ra;
  baselines::HostingSearchMapper hs;

  explicit PaperMappers(std::size_t tries)
      : r(baselines::BaselineOptions{.max_tries = tries,
                                     .dfs_max_expansions = 20000}),
        ra(baselines::BaselineOptions{.max_tries = tries,
                                      .dfs_max_expansions = 20000}),
        hs(baselines::BaselineOptions{.max_tries = tries,
                                      .dfs_max_expansions = 20000}) {}

  [[nodiscard]] std::vector<const core::Mapper*> all() const {
    return {&hmn, &r, &ra, &hs};
  }
  [[nodiscard]] static std::vector<std::string> names() {
    return {"HMN", "R", "RA", "HS"};
  }
};

/// Grid spec for the paper's full Table 2/3 run.
inline expfw::GridSpec paper_grid(bool simulate_experiment = false) {
  expfw::GridSpec spec;
  spec.scenarios = workload::paper_scenarios();
  spec.clusters = {workload::ClusterKind::kTorus2D,
                   workload::ClusterKind::kSwitched};
  spec.repetitions = bench_reps();
  spec.master_seed = env_seed();
  spec.simulate_experiment = simulate_experiment;
  return spec;
}

}  // namespace hmn::bench
