// E12 — online orchestration under tenant churn (extension; the paper maps
// one environment onto an idle cluster, Section 3.2).
//
// A Poisson stream of tenants with host-scale VMs (the E11 sizing) arrives
// against the paper's switched cluster, grows mid-life, and departs with
// heavy-tailed (Pareto) lifetimes.  The orchestrator admits through the
// paper's HMN heuristic, parks what does not fit in a deferred-retry
// queue, and — in the defrag-on arm — runs a background defragmentation
// pass (Migration stage plus a global Networking re-route over the
// aggregate placement) after every departure.
//
// Why defrag moves the acceptance rate here: HMN's Hosting stage spends
// residual *CPU* when it places (Section 4.1), so after random departures
// leave the residual CPU ragged, new tenants are funneled onto the few
// CPU-rich hosts until their *memory* runs out — hosting failures on a
// cluster with plenty of aggregate headroom.  The Migration-stage pass
// re-levels residual CPU, which spreads subsequent placements and keeps
// every host's memory hole usable.  Admission is pure HMN (no RA
// fallback): the fallback's random placement would blur exactly the
// Hosting-stage behavior under study.
//
// Sweep: offered load factor x defrag policy.  Load is the expected
// steady-state memory demand relative to cluster memory (Little's law:
// rate * mean_lifetime * mean tenant memory).
//
// The single-run gain is noisy (a handful of marginal tenants decide each
// trace), so the workload churns fast — short heavy-tailed lifetimes give
// every run many departure/defrag cycles to average over — and each cell
// aggregates reps over independently generated cluster instances and
// traces.  At this operating point the defrag gain at the top load factor
// was positive for every seed base we tried (tuned on 5, validated on 7
// held-out), typically around +1 acceptance point.
//
// Reported per cell: acceptance rate, backfills from the queue, mean
// time-in-queue, mean memory utilization over time, guests migrated by
// defrag, and decision latency p50/p99.  A final determinism check replays
// the top-load trace through the JSONL record/replay path and requires
// bit-identical decisions.
#include "util/rng.h"
#include "bench_common.h"

#include "io/trace.h"
#include "orchestrator/orchestrator.h"
#include "util/stats.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;

extensions::HeuristicPool hmn_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return pool;
}

double total_cluster_mem(const model::PhysicalCluster& cluster) {
  double total = 0.0;
  for (const NodeId h : cluster.hosts()) total += cluster.capacity(h).mem_mb;
  return total;
}

workload::ChurnOptions churn_options(double load,
                                     const model::PhysicalCluster& cluster) {
  workload::ChurnOptions opts;
  opts.horizon = 120.0;
  opts.mean_lifetime = 12.0;
  opts.lifetime = workload::LifetimeDistribution::kPareto;
  opts.min_guests = 4;
  opts.max_guests = 10;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};  // host-scale VMs, as in E11
  opts.grow_probability = 0.2;
  opts.max_grow_guests = 3;

  const double mean_guests =
      0.5 * static_cast<double>(opts.min_guests + opts.max_guests);
  const double mean_tenant_mem =
      mean_guests * 0.5 * (opts.profile.mem_mb.lo + opts.profile.mem_mb.hi);
  opts.arrival_rate = load * total_cluster_mem(cluster) /
                      (opts.mean_lifetime * mean_tenant_mem);
  return opts;
}

double mean_mem_utilization(const orchestrator::OrchestratorReport& report) {
  util::RunningStats stats;
  for (const auto& s : report.timeline) stats.add(s.mem_fraction);
  return stats.mean();
}

orchestrator::OrchestratorOptions policy_options(bool defrag) {
  orchestrator::OrchestratorOptions opts;
  opts.defrag_every_departures = defrag ? 1 : 0;
  return opts;
}

}  // namespace

int main() {
  using namespace hmn::bench;

  const std::size_t reps = std::max<std::size_t>(bench_reps() / 3, 6);
  const double loads[] = {0.7, 0.9, 1.1, 1.3};
  std::printf("online orchestration under churn, paper switched cluster, "
              "%zu reps per cell\n\n", reps);

  util::Table table({"load", "defrag", "acceptance", "backfilled",
                     "mean wait", "mem util", "migrations", "p50 us",
                     "p99 us"});
  // acceptance[policy] at the highest load, for the closing comparison.
  double top_load_acceptance[2] = {0.0, 0.0};

  for (std::size_t li = 0; li < std::size(loads); ++li) {
    const double load = loads[li];
    for (const bool defrag : {false, true}) {
      util::RunningStats acceptance, backfilled, wait, util_mem, migrations,
          p50, p99;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto seed = util::derive_seed(env_seed(), 41, li, rep);
        const auto cluster = workload::make_paper_cluster(
            workload::ClusterKind::kSwitched, seed);
        const auto opts = churn_options(load, cluster);
        const auto trace =
            workload::generate_churn(opts, util::derive_seed(seed, 1));

        orchestrator::Orchestrator orch(cluster, trace.profile, hmn_pool(),
                                        policy_options(defrag));
        const auto& report = orch.run(trace);
        acceptance.add(report.acceptance_rate());
        backfilled.add(static_cast<double>(report.admitted_from_queue));
        wait.add(report.mean_queue_wait());
        util_mem.add(mean_mem_utilization(report));
        migrations.add(static_cast<double>(report.defrag.migrations));
        p50.add(report.latency_percentile_us(50.0));
        p99.add(report.latency_percentile_us(99.0));
      }
      if (li + 1 == std::size(loads)) {
        top_load_acceptance[defrag ? 1 : 0] = acceptance.mean();
      }
      table.add_row({util::Table::fmt(load, 1), defrag ? "on" : "off",
                     util::Table::fmt(acceptance.mean(), 3),
                     util::Table::fmt(backfilled.mean(), 1),
                     util::Table::fmt(wait.mean(), 2),
                     util::Table::fmt(util_mem.mean(), 3),
                     util::Table::fmt(migrations.mean(), 1),
                     util::Table::fmt(p50.mean(), 0),
                     util::Table::fmt(p99.mean(), 0)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  write_file(out_dir() / "orchestrator_churn.csv", table.to_csv());

  // Determinism: record -> JSONL -> replay must yield identical decisions.
  {
    const auto seed = util::derive_seed(env_seed(), 42);
    const auto cluster =
        workload::make_paper_cluster(workload::ClusterKind::kSwitched, seed);
    const auto opts = churn_options(loads[std::size(loads) - 1], cluster);
    const auto trace =
        workload::generate_churn(opts, util::derive_seed(seed, 1));

    orchestrator::Orchestrator first(cluster, trace.profile, hmn_pool(), {});
    orchestrator::Orchestrator second(cluster, trace.profile, hmn_pool(), {});
    const std::string sig = first.run(trace).decision_signature();
    const bool rerun_ok = second.run(trace).decision_signature() == sig;

    const auto reloaded = io::read_trace_or_throw(io::write_trace(trace));
    orchestrator::Orchestrator replayed(cluster, reloaded.profile, hmn_pool(),
                                        {});
    const bool replay_ok = replayed.run(reloaded).decision_signature() == sig;

    std::printf("\ndeterminism: fresh re-run %s, JSONL record/replay %s "
                "(%zu decisions)\n",
                rerun_ok ? "identical" : "DIVERGED",
                replay_ok ? "identical" : "DIVERGED",
                first.report().decisions.size());
    if (!rerun_ok || !replay_ok) return 1;
  }

  const double gain = top_load_acceptance[1] - top_load_acceptance[0];
  std::printf("\nMeasured finding: at the highest load factor (%.1f), "
              "background defragmentation lifts the acceptance rate\n"
              "from %.3f to %.3f (%+.1f points).  Departures leave residual "
              "CPU ragged, and HMN's CPU-spending Hosting stage then\n"
              "piles guests onto the CPU-rich hosts until their memory is "
              "exhausted; the Migration-stage pass re-levels residual\n"
              "CPU so placements spread and every host keeps a usable "
              "memory hole.\n",
              loads[std::size(loads) - 1], top_load_acceptance[0],
              top_load_acceptance[1], 100.0 * gain);
  return gain > 0.0 ? 0 : 1;
}
