// E18 — crash-consistent orchestration: the write-ahead journal, the
// checkpoint/recovery path, and the crash-point chaos harness (extension;
// the paper's Section 1 testbeds assume an immortal control plane — a
// production embedding service cannot).
//
// Four gates, all of which must hold for a zero exit:
//
//   crash sweep     a churn + blast-failure run is journaled; the process
//                   is killed at injected crash points (every journal
//                   record append is a site; `--smoke` samples them via
//                   workload::generate_crash_schedule, the full run sweeps
//                   ALL of them) and recovered from the surviving bytes.
//                   The resumed run's fingerprint AND encoded final state
//                   must be byte-identical to the uninterrupted run's.
//   corruption      a mid-stream bit flip, a doctored checkpoint, and a
//                   journal truncated inside a frame: the first two must
//                   fail recovery loudly with descriptive errors; the
//                   truncation must recover exactly the intact prefix.
//   overhead        the E12 churn workload runs with and without the
//                   WalManager attached; journaling must cost ≤5% (plus a
//                   small absolute slack for timer noise) on the admission
//                   decision p99.
//   bounded replay  recovery work is O(checkpoint + tail), not O(run):
//                   with checkpoints every N events, recovery replays at
//                   most N groups however long the run was; with
//                   checkpoints off it replays everything.  Wall-clock
//                   times are reported; the gate is structural.
#include "bench_common.h"

#include <chrono>
#include <string_view>

#include "orchestrator/orchestrator.h"
#include "recovery/checkpoint.h"
#include "recovery/journal.h"
#include "recovery/recovery.h"
#include "topology/topologies.h"
#include "util/stats.h"
#include "workload/crashes.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;

extensions::HeuristicPool hmn_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return pool;
}

// --- the journaled workload: churn + blast failures on a racked fabric ---

model::PhysicalCluster recovery_cluster() {
  return model::PhysicalCluster::build(
      topology::switch_tree(8, 4, 2),
      std::vector<model::HostCapacity>(8, {1000, 4096, 4096}),
      model::LinkProps{1000.0, 5.0});
}

workload::ChurnTrace recovery_trace(const model::PhysicalCluster& cluster,
                                    std::uint64_t seed, double horizon) {
  workload::ChurnOptions copts;
  copts.arrival_rate = 0.6;
  copts.horizon = horizon;
  copts.mean_lifetime = 10.0;
  copts.min_guests = 2;
  copts.max_guests = 6;
  copts.density = 0.3;
  copts.grow_probability = 0.2;
  copts.profile = workload::high_level_profile();
  copts.profile.mem_mb = {512.0, 1280.0};
  auto trace = workload::generate_churn(copts, seed);
  workload::FailureOptions fopts;
  fopts.horizon = copts.horizon;
  fopts.host_mttf = 60.0;
  fopts.host_mttr = 4.0;
  fopts.blast_mttf = 18.0;
  fopts.blast_mttr = 4.0;
  workload::merge_events(trace,
                         workload::generate_failures(fopts, cluster,
                                                     seed ^ 0xb1a57));
  return trace;
}

orchestrator::OrchestratorOptions recovery_options() {
  orchestrator::OrchestratorOptions opts;
  opts.retry_max_attempts = 4;
  opts.retry_max_passovers = 3;
  opts.queue_policy = orchestrator::QueuePolicy::kSmallestFirst;
  return opts;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Reference {
  model::PhysicalCluster cluster;
  workload::ChurnTrace trace;
  std::uint64_t fingerprint = 0;
  std::string final_state;
  std::string journal;       // the uninterrupted, checkpointed journal
  std::uint64_t total_records = 0;
};

Reference make_reference(std::uint64_t seed, double horizon,
                         std::uint64_t checkpoint_every) {
  Reference ref;
  ref.cluster = recovery_cluster();
  ref.trace = recovery_trace(ref.cluster, seed, horizon);
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = checkpoint_every;
  orchestrator::Orchestrator orch(ref.cluster, ref.trace.profile,
                                  recovery_options());
  recovery::WalManager wal(orch, ref.journal, wopts);
  for (const auto& ev : ref.trace.events) orch.handle(ev);
  ref.fingerprint = orch.run_fingerprint();
  ref.final_state = recovery::encode_state(orch.export_state());
  ref.total_records = wal.next_seq();
  return ref;
}

// --- gate 1: the crash sweep ---------------------------------------------

/// Kills the run at `point`, recovers from the surviving journal bytes,
/// resumes, and reports whether the trajectory was reproduced exactly.
bool crash_and_recover(const Reference& ref, const workload::CrashPoint& point,
                       std::uint64_t checkpoint_every, bool& used_checkpoint,
                       bool& torn_tail) {
  recovery::WalOptions wopts;
  wopts.checkpoint_every_events = checkpoint_every;
  std::string journal;
  bool crashed = false;
  std::size_t crash_event = 0;
  {
    orchestrator::Orchestrator doomed(ref.cluster, ref.trace.profile,
                                      recovery_options());
    recovery::WalManager wal(doomed, journal, wopts);
    wal.arm_crash(point);
    try {
      for (const auto& ev : ref.trace.events) doomed.handle(ev);
    } catch (const recovery::CrashError&) {
      crashed = true;
      crash_event = doomed.events_handled();
    }
    // Process death: doomed and wal are abandoned with the event half done.
  }
  if (!crashed) return false;
  (void)crash_event;

  orchestrator::Orchestrator orch(ref.cluster, ref.trace.profile,
                                  recovery_options());
  const recovery::RecoveredRun rec = recovery::recover(orch, journal);
  used_checkpoint = rec.used_checkpoint;
  torn_tail = rec.torn_tail;
  journal.resize(rec.valid_bytes);
  recovery::WalManager wal(orch, journal, wopts, rec.next_seq);
  for (std::size_t i = rec.next_event_index; i < ref.trace.events.size();
       ++i) {
    orch.handle(ref.trace.events[i]);
  }
  return orch.run_fingerprint() == ref.fingerprint &&
         recovery::encode_state(orch.export_state()) == ref.final_state;
}

// --- gate 2: corruption canaries -----------------------------------------

/// A bit-flipped journal and a doctored checkpoint must fail recovery
/// loudly; a truncation inside the final frame must recover exactly the
/// intact prefix.  Runs standalone under `--canary` so CI has a dedicated
/// guard against recovery going silently permissive.
bool run_corruption_canaries(const Reference& ref) {
  bool flip_loud = false, doctored_loud = false, truncation_clean = false;

  // Bit flip in an early frame's payload: bytes follow, so this is rot.
  std::string corrupt = ref.journal;
  corrupt[24] ^= 0x10;
  try {
    orchestrator::Orchestrator orch(ref.cluster, ref.trace.profile,
                                    recovery_options());
    (void)recovery::recover(orch, corrupt);
    std::printf("bit flip: LOADED SILENTLY — recovery is broken\n");
  } catch (const recovery::RecoveryError& e) {
    flip_loud = std::string_view(e.what()).find("byte offset") !=
                std::string_view::npos;
    std::printf("bit flip: refused (\"%.60s...\")\n", e.what());
  }

  // A checkpoint claiming aggregates its mappings don't back: the restore
  // path must refuse the smuggled bookkeeping.
  const auto parse = recovery::parse_journal(ref.journal);
  for (const auto& rec : parse.records) {
    if (rec.type != recovery::RecordType::kCheckpoint) continue;
    auto state = recovery::decode_state(rec.checkpoint);
    if (state.tenancy.used_mem.empty()) continue;
    state.tenancy.used_mem[0] += 777.0;
    try {
      orchestrator::Orchestrator orch(ref.cluster, ref.trace.profile,
                                      recovery_options());
      orch.restore_state(std::move(state));
      std::printf("doctored checkpoint: ACCEPTED — restore is broken\n");
    } catch (const std::invalid_argument& e) {
      doctored_loud = true;
      std::printf("doctored checkpoint: refused (\"%.60s...\")\n", e.what());
    }
    break;
  }

  // Truncation inside the final frame: a crash artifact, recovered as the
  // intact prefix with the torn tail reported.
  orchestrator::Orchestrator orch(ref.cluster, ref.trace.profile,
                                  recovery_options());
  const auto rec = recovery::recover(
      orch,
      std::string_view(ref.journal).substr(0, ref.journal.size() - 5));
  truncation_clean = rec.torn_tail &&
                     rec.next_event_index < ref.trace.events.size() &&
                     orch.run_fingerprint() != ref.fingerprint;
  std::printf("truncated tail: recovered prefix through event %llu of %zu\n",
              (unsigned long long)rec.next_event_index,
              ref.trace.events.size());
  return flip_loud && doctored_loud && truncation_clean;
}

// --- gate 3: journal overhead on the E12 churn workload ------------------

double total_cluster_mem(const model::PhysicalCluster& cluster) {
  double total = 0.0;
  for (const NodeId h : cluster.hosts()) total += cluster.capacity(h).mem_mb;
  return total;
}

workload::ChurnOptions e12_options(double load, double horizon,
                                   const model::PhysicalCluster& cluster) {
  workload::ChurnOptions opts;
  opts.horizon = horizon;
  opts.mean_lifetime = 12.0;
  opts.lifetime = workload::LifetimeDistribution::kPareto;
  opts.min_guests = 4;
  opts.max_guests = 10;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};
  opts.grow_probability = 0.2;
  opts.max_grow_guests = 3;
  const double mean_guests =
      0.5 * static_cast<double>(opts.min_guests + opts.max_guests);
  const double mean_tenant_mem =
      mean_guests * 0.5 * (opts.profile.mem_mb.lo + opts.profile.mem_mb.hi);
  opts.arrival_rate = load * total_cluster_mem(cluster) /
                      (opts.mean_lifetime * mean_tenant_mem);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmn::bench;
  bool smoke = false;
  bool canary_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") smoke = true;
    if (arg == "--canary") canary_only = true;
  }

  const std::uint64_t checkpoint_every = 8;
  const double horizon = smoke || canary_only ? 30.0 : 60.0;
  const auto seed = util::derive_seed(env_seed(), 48);

  if (canary_only) {
    std::printf("E18: journal-corruption canary\n\n");
    const Reference ref = make_reference(seed, horizon, checkpoint_every);
    const bool ok = run_corruption_canaries(ref);
    std::printf("\ncorruption canaries %s\n", ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
  }

  std::printf("E18: crash-consistent orchestration%s\n\n",
              smoke ? " (smoke)" : "");

  // ---- gate 1: crash sweep ----------------------------------------------
  const Reference ref = make_reference(seed, horizon, checkpoint_every);
  std::vector<workload::CrashPoint> points;
  if (smoke) {
    points = workload::generate_crash_schedule(util::derive_seed(seed, 1), 25,
                                               ref.total_records);
  } else {
    points.reserve(ref.total_records);
    for (std::uint64_t s = 0; s < ref.total_records; ++s) {
      points.push_back({s, s * 2654435761ull + 0x9E3779B9ull});
    }
  }
  std::size_t identical = 0, torn = 0, checkpointed = 0;
  for (const auto& point : points) {
    bool used_ckpt = false, torn_tail = false;
    if (crash_and_recover(ref, point, checkpoint_every, used_ckpt,
                          torn_tail)) {
      ++identical;
    } else {
      std::printf("CRASH POINT DIVERGED: seq %llu torn_seed %llu\n",
                  (unsigned long long)point.record_seq,
                  (unsigned long long)point.torn_seed);
    }
    torn += torn_tail;
    checkpointed += used_ckpt;
  }
  const bool sweep_ok = identical == points.size() && torn > 0;
  std::printf("crash sweep: %zu/%zu sites byte-identical after recovery "
              "(%llu journal records, %zu torn tails, %zu checkpointed "
              "recoveries)\n",
              identical, points.size(),
              (unsigned long long)ref.total_records, torn, checkpointed);

  const bool canary_ok = run_corruption_canaries(ref);
  // ---- gate 3: journal overhead on E12 admission p99 --------------------
  const std::size_t reps = smoke ? 3 : std::max<std::size_t>(6, bench_reps() / 5);
  const double e12_horizon = smoke ? 40.0 : 120.0;
  util::RunningStats p99_plain, p99_wal;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto rep_seed = util::derive_seed(env_seed(), 49, rep);
    const auto cluster =
        workload::make_paper_cluster(workload::ClusterKind::kSwitched,
                                     rep_seed);
    const auto copts = e12_options(0.9, e12_horizon, cluster);
    const auto trace =
        workload::generate_churn(copts, util::derive_seed(rep_seed, 1));
    {
      orchestrator::Orchestrator orch(cluster, trace.profile, hmn_pool(),
                                      {});
      p99_plain.add(orch.run(trace).latency_percentile_us(99.0));
    }
    {
      std::string journal;
      recovery::WalOptions wopts;
      wopts.checkpoint_every_events = 64;
      orchestrator::Orchestrator orch(cluster, trace.profile, hmn_pool(),
                                      {});
      recovery::WalManager wal(orch, journal, wopts);
      for (const auto& ev : trace.events) orch.handle(ev);
      p99_wal.add(orch.report().latency_percentile_us(99.0));
    }
  }
  // 5% relative plus a small absolute slack: at microsecond scale the
  // timer's own jitter would otherwise dominate the verdict.
  const bool overhead_ok =
      p99_wal.mean() <= p99_plain.mean() * 1.05 + 25.0;
  std::printf("\njournal overhead (E12 churn, %zu reps): admission p99 "
              "%.0f us plain vs %.0f us journaled (%+.1f%%)\n",
              reps, p99_plain.mean(), p99_wal.mean(),
              p99_plain.mean() > 0.0
                  ? 100.0 * (p99_wal.mean() / p99_plain.mean() - 1.0)
                  : 0.0);

  // ---- gate 4: recovery work is O(checkpoint + tail) --------------------
  bool bounded_ok = false;
  {
    // Same workload journaled twice: with checkpoints and without.  The
    // checkpointed recovery may replay at most checkpoint_every groups no
    // matter how long the run was; the bare journal replays all of it.
    std::string bare;
    orchestrator::Orchestrator full(ref.cluster, ref.trace.profile,
                                    recovery_options());
    {
      recovery::WalManager wal(full, bare, {.checkpoint_every_events = 0});
      for (const auto& ev : ref.trace.events) full.handle(ev);
    }
    orchestrator::Orchestrator a(ref.cluster, ref.trace.profile,
                                 recovery_options());
    const double t0 = now_ms();
    const auto rec_ckpt = recovery::recover(a, ref.journal);
    const double t1 = now_ms();
    orchestrator::Orchestrator b(ref.cluster, ref.trace.profile,
                                 recovery_options());
    const auto rec_bare = recovery::recover(b, bare);
    const double t2 = now_ms();
    bounded_ok = rec_ckpt.used_checkpoint &&
                 rec_ckpt.replayed_events <= checkpoint_every &&
                 !rec_bare.used_checkpoint &&
                 rec_bare.replayed_events == ref.trace.events.size() &&
                 a.run_fingerprint() == ref.fingerprint &&
                 b.run_fingerprint() == ref.fingerprint;
    std::printf("bounded replay: checkpointed recovery replayed %llu of %zu "
                "events in %.2f ms; full replay %llu events in %.2f ms\n",
                (unsigned long long)rec_ckpt.replayed_events,
                ref.trace.events.size(), t1 - t0,
                (unsigned long long)rec_bare.replayed_events, t2 - t1);
  }

  std::printf("\nMeasured finding: killing the orchestrator at %s journal "
              "record and recovering from the surviving bytes reproduces "
              "the uninterrupted run bit-for-bit — the journal's group "
              "commit plus CRC torn-tail truncation makes every crash "
              "either invisible or loud, never silently wrong.\n",
              smoke ? "a sampled" : "every");
  std::printf("checks: crash sweep %s, corruption canaries %s, overhead %s, "
              "bounded replay %s\n",
              sweep_ok ? "ok" : "FAILED", canary_ok ? "ok" : "FAILED",
              overhead_ok ? "ok" : "FAILED", bounded_ok ? "ok" : "FAILED");
  return (sweep_ok && canary_ok && overhead_ok && bounded_ok) ? 0 : 1;
}
