// E8 — extension study (the paper's Section 6 future work): alternative
// optimization goals and the heuristic pool.
//
// Compares the load-balancing HMN against the consolidating MinHosts
// mapper under three objectives (load balance, hosts used, network
// footprint), and measures how often the HMN->RA fallback pool rescues an
// instance HMN alone cannot map.
#include "bench_common.h"

#include "core/validator.h"
#include "extensions/heuristic_pool.h"
#include "extensions/greedy_rank_mapper.h"
#include "extensions/min_hosts_mapper.h"
#include "extensions/objectives.h"
#include "util/stats.h"
#include "workload/venv_generator.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  const std::size_t reps = std::max<std::size_t>(bench_reps() / 3, 5);
  const core::HmnMapper hmn_mapper;
  const extensions::MinHostsMapper min_hosts;
  const extensions::GreedyRankMapper greedy_rank;
  const extensions::LoadBalanceObjective lbf;
  const extensions::MinHostsObjective hosts_used;
  const extensions::NetworkFootprintObjective footprint;

  const std::vector<workload::Scenario> scenarios{
      {2.5, 0.02, workload::WorkloadKind::kHighLevel},
      {5.0, 0.02, workload::WorkloadKind::kHighLevel},
      {10.0, 0.02, workload::WorkloadKind::kHighLevel},
      {20.0, 0.01, workload::WorkloadKind::kLowLevel},
  };

  util::Table table({"scenario", "mapper", "lbf", "hosts used",
                     "net footprint (Mbps-hops)"});
  for (const auto& scenario : scenarios) {
    for (const core::Mapper* mapper :
         std::initializer_list<const core::Mapper*>{&hmn_mapper, &greedy_rank,
                                                    &min_hosts}) {
      util::RunningStats s_lbf, s_hosts, s_fp;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto seed = util::derive_seed(env_seed(), 7, rep);
        const auto cluster = workload::make_paper_cluster(
            workload::ClusterKind::kSwitched, seed);
        const auto venv =
            workload::make_scenario_venv(scenario, cluster, seed + 1);
        const auto out = mapper->map(cluster, venv, seed);
        if (!out.ok()) continue;
        s_lbf.add(lbf.evaluate(cluster, venv, *out.mapping));
        s_hosts.add(hosts_used.evaluate(cluster, venv, *out.mapping));
        s_fp.add(footprint.evaluate(cluster, venv, *out.mapping));
      }
      table.add_row({scenario.label(), mapper->name(),
                     util::Table::fmt(s_lbf.mean(), 1),
                     util::Table::fmt(s_hosts.mean(), 1),
                     util::Table::fmt(s_fp.mean(), 1)});
    }
  }
  std::printf("objective trade-offs (switched cluster, %zu reps):\n%s",
              reps, table.to_string().c_str());
  write_file(out_dir() / "extensions_objectives.csv", table.to_csv());

  // Heuristic pool rescue rate on instances generated *without* the
  // feasibility normalization (so hosting failures actually occur).
  std::size_t hmn_ok = 0, pool_ok = 0, total = 0;
  const auto pool = extensions::default_pool();
  for (std::size_t rep = 0; rep < reps * 4; ++rep) {
    const auto seed = util::derive_seed(env_seed(), 13, rep);
    const auto cluster = workload::make_paper_cluster(
        workload::ClusterKind::kSwitched, seed);
    util::Rng rng(seed + 1);
    workload::VenvGenOptions opts;
    opts.guest_count = 400;
    opts.density = 0.015;
    opts.profile = workload::high_level_profile();
    opts.normalize_to = &cluster;
    opts.capacity_fraction = 0.93;  // deliberately tight packing
    const auto venv = workload::generate_venv(opts, rng);
    ++total;
    if (hmn_mapper.map(cluster, venv, seed).ok()) ++hmn_ok;
    if (pool.first_success(cluster, venv, seed).ok()) ++pool_ok;
  }
  std::printf("\ntight 10:1 instances (93%% aggregate memory): HMN alone "
              "%zu/%zu, HMN->RA pool %zu/%zu\n",
              hmn_ok, total, pool_ok, total);
  return 0;
}
