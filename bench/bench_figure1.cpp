// E3 — regenerates the paper's **Figure 1**: HMN mapping time (mean and
// standard deviation) as a function of the number of virtual links actually
// being mapped, on the torus cluster.
//
// Expected shape: time grows superlinearly-ish with the number of
// inter-host links (each link is one A*Prune run; wider instances also
// lower residual bandwidth diversity), with visible variance because links
// between co-located guests are "handled inside the host" and never routed
// — so the routed-link count itself varies per repetition.  The paper's
// companion observation that the switched cluster maps in well under a
// second at every size is checked alongside.
#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  // Sweep the full ratio range on the torus (both workload presets), HMN
  // only — Figure 1 plots HMN alone.
  expfw::GridSpec spec = paper_grid();
  spec.clusters = {workload::ClusterKind::kTorus2D,
                   workload::ClusterKind::kSwitched};
  const core::HmnMapper hmn_mapper;
  std::printf("Figure 1 sweep: %zu scenarios x %zu reps (HMN only)\n",
              spec.scenarios.size(), spec.repetitions);

  const auto records = expfw::run_grid(spec, {&hmn_mapper});
  const auto summary = expfw::summarize(records);

  const auto pts = expfw::figure1_series(
      spec.scenarios, workload::ClusterKind::kTorus2D, "HMN", summary);
  std::printf("\nFigure 1 — HMN mapping time vs. virtual links mapped "
              "(torus cluster):\n%s",
              expfw::render_series(pts, "links mapped", "map time (s)")
                  .c_str());

  {
    util::CsvWriter csv((out_dir() / "figure1_hmn_torus.csv").string());
    csv.row({"links_mapped_mean", "map_seconds_mean", "map_seconds_stddev",
             "scenario"});
    for (const auto& p : pts) {
      csv.row({util::CsvWriter::num(p.x), util::CsvWriter::num(p.mean),
               util::CsvWriter::num(p.stddev), p.label});
    }
    std::printf("wrote %s\n",
                (out_dir() / "figure1_hmn_torus.csv").string().c_str());
  }

  // Per-repetition scatter: the paper notes the time "varied considerably
  // in different simulations of a same scenario" because the number of
  // links actually mapped varies with co-location; the scatter makes that
  // mechanism plottable.
  {
    util::CsvWriter scatter((out_dir() / "figure1_scatter.csv").string());
    scatter.row({"scenario", "rep", "links_routed", "map_seconds"});
    for (const auto& r : records) {
      if (!r.ok || r.cluster != workload::ClusterKind::kTorus2D) continue;
      scatter.row({spec.scenarios[r.scenario_index].label(),
                   std::to_string(r.repetition),
                   std::to_string(r.stats.links_routed),
                   util::CsvWriter::num(r.stats.total_seconds)});
    }
    std::printf("wrote %s\n",
                (out_dir() / "figure1_scatter.csv").string().c_str());
  }

  // Companion check (Section 5.2): switched-cluster mapping time stays
  // far below the torus time at the largest sizes.
  const auto sw = expfw::figure1_series(
      spec.scenarios, workload::ClusterKind::kSwitched, "HMN", summary);
  if (!pts.empty() && !sw.empty()) {
    std::printf("\nlargest instance: torus %.4f s vs switched %.4f s\n",
                pts.back().mean, sw.back().mean);
  }
  return 0;
}
