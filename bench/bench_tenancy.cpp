// E11 — multi-tenant admission study (extension; the paper assumes one
// tester at a time, Section 3.2).
//
// Testers arrive with independent virtual environments; the TenancyManager
// admits each against the residual capacity.  Compares admission mappers:
//
//   * HMN (load-balancing) — spreads every tenant thin, so later tenants
//     see fragmented capacity;
//   * MinHosts (consolidating) — packs each tenant tight, keeping whole
//     hosts free for later arrivals — the use case the paper's Section 6
//     names for the min-hosts objective ("one could be interested in a
//     mapping whose goal is to minimize the amount of hosts used").
//
// Reported: tenants admitted before first rejection, total guests placed,
// and final memory utilization.
#include "bench_common.h"

#include "emulator/tenancy.h"
#include "extensions/min_hosts_mapper.h"
#include "util/stats.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;

extensions::HeuristicPool hmn_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return pool;
}

extensions::HeuristicPool minhosts_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<extensions::MinHostsMapper>());
  return pool;
}

model::VirtualEnvironment tenant_venv(const model::PhysicalCluster& cluster,
                                      util::Rng& rng) {
  workload::VenvGenOptions opts;
  // Host-scale VMs (0.5-1.5 GB on 1-3 GB hosts): bin-packing fragmentation
  // is real at this item size, which is where the admission policies
  // diverge.  Small VMs (the paper's 128-256 MB) pack tightly under any
  // policy.
  opts.guest_count = 8;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};
  opts.normalize_to = &cluster;
  opts.capacity_fraction = 1.0;  // tenants are sized absolutely
  return workload::generate_venv(opts, rng);
}

}  // namespace

int main() {
  using namespace hmn::bench;

  const std::size_t reps = std::max<std::size_t>(bench_reps() / 3, 5);
  util::Table table({"admission mapper", "tenants admitted (mean)",
                     "guests placed (mean)", "final mem util (mean)"});
  std::printf("multi-tenant admission on the paper's switched cluster, "
              "%zu reps\n", reps);

  struct Policy {
    const char* name;
    extensions::HeuristicPool (*make)();
  };
  for (const Policy& policy :
       {Policy{"HMN (balance)", &hmn_pool},
        Policy{"MinHosts (consolidate)", &minhosts_pool}}) {
    util::RunningStats admitted, guests, mem_util;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto seed = util::derive_seed(env_seed(), 31, rep);
      emulator::TenancyManager mgr(
          workload::make_paper_cluster(workload::ClusterKind::kSwitched,
                                       seed),
          policy.make());
      util::Rng rng(seed + 1);
      std::size_t count = 0;
      while (count < 64) {
        auto venv = tenant_venv(mgr.cluster(), rng);
        if (!mgr.admit("t" + std::to_string(count), std::move(venv),
                       util::derive_seed(seed, count))
                 .ok()) {
          break;
        }
        ++count;
      }
      admitted.add(static_cast<double>(count));
      guests.add(static_cast<double>(mgr.utilization().guests));
      mem_util.add(mgr.utilization().mem_fraction);
    }
    table.add_row({policy.name, util::Table::fmt(admitted.mean(), 1),
                   util::Table::fmt(guests.mean(), 0),
                   util::Table::fmt(mem_util.mean(), 3)});
  }
  std::printf("\n%s", table.to_string().c_str());
  write_file(out_dir() / "tenancy_admission.csv", table.to_csv());
  std::printf("\nMeasured finding: balanced admission (HMN) matches or "
              "slightly beats consolidation even with host-scale VMs —\n"
              "equalized residuals leave every host with a usable hole for "
              "the next large item, while first-fit-decreasing\n"
              "leaves a mix of crammed and empty hosts whose *average* hole "
              "is no bigger.  The min-hosts objective's real value\n"
              "is operational (whole hosts freed for maintenance or "
              "exclusive use), not admission rate.\n");
  return 0;
}
