// E2 — regenerates the paper's **Table 3**: mean mapping ("simulation")
// time per scenario x cluster x heuristic, in seconds.
//
// Expected shape (paper Section 5.2): HMN is the cheapest mapper at every
// ratio (it never retries); costs grow with the guest:host ratio for every
// heuristic; and the switched cluster routes faster than the torus because
// each virtual link has exactly one candidate path.  Absolute times are
// hardware-dependent and much smaller than the paper's 2009 numbers.
#include "bench_common.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  const auto spec = paper_grid();
  const PaperMappers mappers(bench_tries());
  std::printf("Table 3 grid: %zu scenarios x %zu clusters x %zu mappers x "
              "%zu reps\n",
              spec.scenarios.size(), spec.clusters.size(),
              mappers.all().size(), spec.repetitions);

  const auto records = expfw::run_grid(spec, mappers.all());
  const auto summary = expfw::summarize(records);
  const auto table = expfw::render_time_table(
      spec.scenarios, spec.clusters, PaperMappers::names(), summary);

  std::printf("\nTable 3 — mapping time (seconds, mean of valid runs):\n%s",
              table.to_string().c_str());
  write_file(out_dir() / "table3_time.csv", table.to_csv());

  // Shape check: HMN time grows with ratio within each workload block.
  const auto& scenarios = spec.scenarios;
  for (const auto kind : spec.clusters) {
    double prev = -1.0;
    bool monotone = true;
    for (std::size_t s = 12; s < 16; ++s) {  // the low-level 20..50:1 block
      const auto& cell = summary.cell(s, kind, "HMN");
      if (cell.map_seconds.count() == 0) continue;
      if (cell.map_seconds.mean() < prev) monotone = false;
      prev = cell.map_seconds.mean();
    }
    std::printf("HMN time monotone in ratio (low-level block, %s): %s\n",
                to_string(kind), monotone ? "yes" : "no");
  }
  (void)scenarios;
  return 0;
}
