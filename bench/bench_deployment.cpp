// E9 — the paper's "acceptable time" argument (Section 5.2): mapping time
// is acceptable "considering that the time to deploy such virtual
// environment tend to be greater than that" (citing Quetier et al.'s V-DS
// deployments).  This bench quantifies the comparison: HMN mapping time
// vs. estimated image-deployment time (transfer + boot) for every paper
// scenario on the torus cluster, plus the deployment difference between a
// balanced (HMN) and a consolidated (MinHosts) placement.
#include "bench_common.h"

#include "extensions/min_hosts_mapper.h"
#include "sim/deployment.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  const std::size_t reps = std::max<std::size_t>(bench_reps() / 3, 5);
  const core::HmnMapper hmn_mapper;
  const extensions::MinHostsMapper min_hosts;

  util::Table table({"scenario", "map time (s)", "deploy time (s)",
                     "deploy/map ratio", "deploy consolidated (s)",
                     "images (GB)"});
  std::printf("deployment-vs-mapping comparison (torus cluster, %zu reps)\n",
              reps);

  for (const auto& scenario : workload::paper_scenarios()) {
    util::RunningStats map_time, deploy_time, deploy_packed, volume;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto seed = util::derive_seed(env_seed(), 17, rep);
      const auto cluster = workload::make_paper_cluster(
          workload::ClusterKind::kTorus2D, seed);
      const auto venv =
          workload::make_scenario_venv(scenario, cluster, seed + 1);

      const auto out = hmn_mapper.map(cluster, venv, seed);
      if (!out.ok()) continue;
      map_time.add(out.stats.total_seconds);
      const auto deployment =
          sim::estimate_deployment(cluster, venv, *out.mapping);
      deploy_time.add(deployment.total_seconds);
      volume.add(static_cast<double>(deployment.bytes_moved_gb));

      const auto packed = min_hosts.map(cluster, venv, seed);
      if (packed.ok()) {
        deploy_packed.add(
            sim::estimate_deployment(cluster, venv, *packed.mapping)
                .total_seconds);
      }
    }
    if (map_time.count() == 0) {
      table.add_row({scenario.label(), "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row(
        {scenario.label(), util::Table::fmt(map_time.mean(), 4),
         util::Table::fmt(deploy_time.mean(), 1),
         util::Table::fmt(deploy_time.mean() / map_time.mean(), 0),
         deploy_packed.count() > 0
             ? util::Table::fmt(deploy_packed.mean(), 1)
             : "-",
         util::Table::fmt(volume.mean(), 0)});
  }
  std::printf("\n%s", table.to_string().c_str());
  write_file(out_dir() / "deployment_vs_mapping.csv", table.to_csv());
  std::printf("\nThe deploy/map ratio quantifies the paper's claim that "
              "mapping cost is negligible next to deployment;\n"
              "the consolidated column shows deployment slowing when few "
              "hosts absorb all images (sequential boots).\n");
  return 0;
}
