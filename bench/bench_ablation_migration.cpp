// E5 — ablation: the Migration stage's contribution (Section 4.2).
//
// Runs full HMN against the Hosting+Networking-only variant ("HN") on the
// paper grid and reports the per-scenario objective improvement and the
// migration counts.  The paper's observation that HMN's "efficacy
// decreases as the number of guests to be mapped increases ... as more
// guests reduce the chance of migrations" shows up as the improvement
// shrinking toward zero at ratio 10:1 and above.
#include "bench_common.h"

int main() {
  using namespace hmn;
  using namespace hmn::bench;

  expfw::GridSpec spec = paper_grid();
  spec.clusters = {workload::ClusterKind::kSwitched};  // topology-neutral

  const core::HmnMapper with_migration;
  core::HmnOptions off;
  off.enable_migration = false;
  const core::HmnMapper without_migration(off);
  // Extension variant: exhaustive steepest-descent victim selection
  // (VictimPolicy::kBestImprovement) — how much balance the paper's cheap
  // single-victim rule leaves on the table.
  core::HmnOptions deep;
  deep.migration.victim = core::VictimPolicy::kBestImprovement;
  deep.display_name = "HMN+";
  const core::HmnMapper best_improvement(deep);

  std::printf("migration ablation: %zu scenarios x %zu reps\n",
              spec.scenarios.size(), spec.repetitions);
  const auto records = expfw::run_grid(
      spec, {&with_migration, &without_migration, &best_improvement});
  const auto summary = expfw::summarize(records);

  util::Table table({"scenario", "HMN lbf", "HN lbf", "HMN+ lbf",
                     "improvement %", "migrations (mean)"});
  // Migration counts come from raw records (not aggregated).
  std::vector<double> migrations_per_scenario(spec.scenarios.size(), 0.0);
  std::vector<std::size_t> counts(spec.scenarios.size(), 0);
  for (const auto& r : records) {
    if (r.mapper == "HMN" && r.ok) {
      migrations_per_scenario[r.scenario_index] +=
          static_cast<double>(r.stats.migrations);
      ++counts[r.scenario_index];
    }
  }

  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    const auto& hmn_cell =
        summary.cell(s, workload::ClusterKind::kSwitched, "HMN");
    const auto& hn_cell =
        summary.cell(s, workload::ClusterKind::kSwitched, "HN");
    const auto& deep_cell =
        summary.cell(s, workload::ClusterKind::kSwitched, "HMN+");
    if (hmn_cell.objective.count() == 0 || hn_cell.objective.count() == 0) {
      table.add_row({spec.scenarios[s].label(), "-", "-", "-", "-", "-"});
      continue;
    }
    const double hmn_lbf = hmn_cell.objective.mean();
    const double hn_lbf = hn_cell.objective.mean();
    const double improvement =
        hn_lbf > 0.0 ? 100.0 * (hn_lbf - hmn_lbf) / hn_lbf : 0.0;
    const double mean_migrations =
        counts[s] > 0 ? migrations_per_scenario[s] /
                            static_cast<double>(counts[s])
                      : 0.0;
    table.add_row({spec.scenarios[s].label(), util::Table::fmt(hmn_lbf, 1),
                   util::Table::fmt(hn_lbf, 1),
                   deep_cell.objective.count() > 0
                       ? util::Table::fmt(deep_cell.objective.mean(), 1)
                       : "-",
                   util::Table::fmt(improvement, 1),
                   util::Table::fmt(mean_migrations, 1)});
  }
  std::printf("\nMigration-stage ablation (switched cluster):\n%s",
              table.to_string().c_str());
  write_file(out_dir() / "ablation_migration.csv", table.to_csv());
  return 0;
}
