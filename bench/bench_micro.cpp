// E7 — google-benchmark microbenchmarks for the algorithmic substrate:
// Dijkstra, the modified A*Prune (with and without dominance pruning),
// DFS variants, generators, and the three HMN stages in isolation.
#include <benchmark/benchmark.h>

#include "core/hosting.h"
#include "core/incremental.h"
#include "core/repair.h"
#include "core/hmn_mapper.h"
#include "core/migration.h"
#include "core/networking.h"
#include "graph/astar_prune.h"
#include "graph/dfs_path.h"
#include "graph/dijkstra.h"
#include "sim/experiment.h"
#include "topology/topologies.h"
#include "workload/scenario.h"
#include "workload/venv_generator.h"

namespace {

using namespace hmn;

const model::PhysicalCluster& torus_cluster() {
  static const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, 1);
  return cluster;
}

const model::VirtualEnvironment& scenario_venv(double ratio, double density,
                                               workload::WorkloadKind kind) {
  static std::map<std::string, model::VirtualEnvironment> cache;
  const workload::Scenario sc{ratio, density, kind};
  auto [it, inserted] = cache.try_emplace(sc.label());
  if (inserted) {
    it->second = workload::make_scenario_venv(sc, torus_cluster(), 2);
  }
  return it->second;
}

void BM_Dijkstra_Torus40(benchmark::State& state) {
  const auto& cluster = torus_cluster();
  auto lat = [&](EdgeId e) { return cluster.link(e).latency_ms; };
  for (auto _ : state) {
    auto sp = graph::dijkstra(cluster.graph(), NodeId{0}, lat);
    benchmark::DoNotOptimize(sp.dist.data());
  }
}
BENCHMARK(BM_Dijkstra_Torus40);

void BM_AStarPrune_Torus40(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const auto& cluster = torus_cluster();
  auto bw = [&](EdgeId e) { return cluster.link(e).bandwidth_mbps; };
  auto lat = [&](EdgeId e) { return cluster.link(e).latency_ms; };
  graph::AStarPruneOptions opts;
  opts.prune_dominated = prune;
  unsigned dst = 1;
  for (auto _ : state) {
    dst = dst % 39 + 1;
    auto path = graph::astar_prune_bottleneck(
        cluster.graph(), NodeId{0}, NodeId{dst}, 0.75, 45.0, bw, lat, opts);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_AStarPrune_Torus40)->Arg(1)->Arg(0)
    ->ArgName("dominance_pruning");

void BM_DfsPruned_Torus40(benchmark::State& state) {
  const auto& cluster = torus_cluster();
  auto bw = [&](EdgeId e) { return cluster.link(e).bandwidth_mbps; };
  auto lat = [&](EdgeId e) { return cluster.link(e).latency_ms; };
  unsigned dst = 1;
  for (auto _ : state) {
    dst = dst % 39 + 1;
    auto path = graph::dfs_find_path(cluster.graph(), NodeId{0}, NodeId{dst},
                                     0.75, 45.0, bw, lat);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_DfsPruned_Torus40);

void BM_DfsNaive_Torus40(benchmark::State& state) {
  const auto& cluster = torus_cluster();
  auto bw = [&](EdgeId e) { return cluster.link(e).bandwidth_mbps; };
  auto lat = [&](EdgeId e) { return cluster.link(e).latency_ms; };
  util::Rng rng(4);
  graph::DfsOptions opts;
  opts.rng = &rng;
  unsigned dst = 1;
  for (auto _ : state) {
    dst = dst % 39 + 1;
    auto path = graph::dfs_first_path(cluster.graph(), NodeId{0},
                                      NodeId{dst}, bw, lat, opts);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_DfsNaive_Torus40);

void BM_RandomConnectedGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  for (auto _ : state) {
    auto g = topology::random_connected_graph(n, 0.01, rng);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RandomConnectedGraph)->Arg(100)->Arg(400)->Arg(2000)
    ->Complexity();

void BM_HostingStage(benchmark::State& state) {
  const auto ratio = static_cast<double>(state.range(0));
  const auto& venv = scenario_venv(
      ratio, ratio > 10 ? 0.01 : 0.02,
      ratio > 10 ? workload::WorkloadKind::kLowLevel
                 : workload::WorkloadKind::kHighLevel);
  for (auto _ : state) {
    core::ResidualState st(torus_cluster());
    auto r = core::run_hosting(venv, st);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_HostingStage)->Arg(5)->Arg(20)->Arg(50)->ArgName("ratio");

void BM_MigrationStage(benchmark::State& state) {
  const auto& venv = scenario_venv(5.0, 0.02,
                                   workload::WorkloadKind::kHighLevel);
  // Prepare a fresh hosting per iteration (migration mutates it).
  for (auto _ : state) {
    state.PauseTiming();
    core::ResidualState st(torus_cluster());
    auto hosted = core::run_hosting(venv, st);
    state.ResumeTiming();
    auto r = core::run_migration(venv, st, hosted.guest_host);
    benchmark::DoNotOptimize(r.migrations);
  }
}
BENCHMARK(BM_MigrationStage);

void BM_NetworkingStage(benchmark::State& state) {
  const auto ratio = static_cast<double>(state.range(0));
  const auto& venv = scenario_venv(
      ratio, ratio > 10 ? 0.01 : 0.02,
      ratio > 10 ? workload::WorkloadKind::kLowLevel
                 : workload::WorkloadKind::kHighLevel);
  core::ResidualState base(torus_cluster());
  auto hosted = core::run_hosting(venv, base);
  for (auto _ : state) {
    state.PauseTiming();
    core::ResidualState st(torus_cluster());
    for (std::size_t g = 0; g < venv.guest_count(); ++g) {
      st.place(venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}),
               hosted.guest_host[g]);
    }
    state.ResumeTiming();
    auto r = core::run_networking(venv, st, hosted.guest_host);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_NetworkingStage)->Arg(5)->Arg(20)->Arg(50)->ArgName("ratio");

void BM_HmnEndToEnd(benchmark::State& state) {
  const auto ratio = static_cast<double>(state.range(0));
  const auto& venv = scenario_venv(
      ratio, ratio > 10 ? 0.01 : 0.02,
      ratio > 10 ? workload::WorkloadKind::kLowLevel
                 : workload::WorkloadKind::kHighLevel);
  const core::HmnMapper mapper;
  for (auto _ : state) {
    auto out = mapper.map(torus_cluster(), venv, 1);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_HmnEndToEnd)->Arg(5)->Arg(20)->Arg(50)->ArgName("ratio");

void BM_ExtendMapping(benchmark::State& state) {
  // Grow a mapped 5:1 instance by 10 guests per iteration (fresh copy each
  // time so the increment size is constant).
  const auto& venv = scenario_venv(5.0, 0.02,
                                   workload::WorkloadKind::kHighLevel);
  const core::HmnMapper mapper;
  const auto base = mapper.map(torus_cluster(), venv, 1);
  util::Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    model::VirtualEnvironment grown;
    for (std::size_t g = 0; g < venv.guest_count(); ++g) {
      grown.add_guest(venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}));
    }
    for (std::size_t l = 0; l < venv.link_count(); ++l) {
      const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
      const auto ep = venv.endpoints(id);
      grown.add_link(ep.src, ep.dst, venv.link(id));
    }
    for (int i = 0; i < 10; ++i) {
      const GuestId g = grown.add_guest({75, 192, 150});
      const GuestId peer{static_cast<GuestId::underlying_type>(
          rng.index(venv.guest_count()))};
      grown.add_link(g, peer, {0.75, 45.0});
    }
    state.ResumeTiming();
    auto out = core::extend_mapping(torus_cluster(), grown, *base.mapping);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_ExtendMapping);

void BM_RepairMapping(benchmark::State& state) {
  const auto& venv = scenario_venv(5.0, 0.02,
                                   workload::WorkloadKind::kHighLevel);
  const core::HmnMapper mapper;
  const auto base = mapper.map(torus_cluster(), venv, 1);
  unsigned host = 0;
  for (auto _ : state) {
    host = (host + 1) % 40;
    auto out = core::repair_mapping(torus_cluster(), venv, *base.mapping,
                                    NodeId{host});
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_RepairMapping);

void BM_ExperimentSimulation(benchmark::State& state) {
  const auto& venv = scenario_venv(5.0, 0.02,
                                   workload::WorkloadKind::kHighLevel);
  const core::HmnMapper mapper;
  const auto out = mapper.map(torus_cluster(), venv, 1);
  sim::ExperimentSpec spec;
  spec.iterations = 5;
  for (auto _ : state) {
    auto r = sim::run_experiment(torus_cluster(), venv, *out.mapping, spec);
    benchmark::DoNotOptimize(r.makespan_seconds);
  }
}
BENCHMARK(BM_ExperimentSimulation);

}  // namespace

BENCHMARK_MAIN();
