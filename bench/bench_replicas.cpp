// E17 — k-of-n replica placement with SLA tiers under correlated failures.
//
// Tenants declare a replica group (any k of n members alive keeps the
// tenant healthy) and an SLA tier (gold / standard / best-effort).  The
// anti-affinity pass (extensions::replica_aware) spreads each group's
// members across the cluster's failure domains — the PR 5 blast groups
// (a leaf switch plus its subtree) and the power domains added here (PDU
// striping across racks, one repair crew serialized across outages) — so
// a single correlated event downs at most a minority of any group.  The
// tier-aware Healer then *defers* repair for quorate degraded groups
// (the tenant keeps running on its surviving replicas), heals gold
// tenants first, and parks best-effort tenants without claiming the
// spare-headroom reserve.
//
// Three variants over the same recorded v4 trace:
//
//   replicated    domain-annotated cluster, anti-affine spread, tier-aware
//                 healing — the full subsystem;
//   blind         identical in every respect except the cluster carries no
//                 failure-domain annotation, so the spread pass is inert
//                 and replicas land wherever the base mapper puts them;
//   unreplicated  the same arrivals with the replica spec stripped (tiers
//                 kept), so every failure needs a real repair.
//
// Reported per variant: gold / standard / best-effort tenant-minutes
// lost, deferred repairs, power outages, parks, drops.  Gates (exit
// nonzero on any failure): zero invariant-auditor violations anywhere;
// replicated loses strictly fewer gold tenant-minutes than both
// baselines in aggregate; a fresh re-run and a v4 record/replay produce
// byte-identical decision signatures; and the sharded router with
// replica_spread routes a replicated batch byte-identically at
// threads=1 and threads=4.  `--smoke` shrinks the grid for CI.
#include "bench_common.h"

#include <string_view>

#include "extensions/replica_spread.h"
#include "io/trace.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/router.h"
#include "topology/topologies.h"
#include "util/stats.h"
#include "workload/host_generator.h"
#include "workload/power_domains.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;

constexpr std::size_t kPowerDomains = 4;

extensions::HeuristicPool spread_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return extensions::replica_aware(std::move(pool));
}

double total_cluster_mem(const model::PhysicalCluster& cluster) {
  double total = 0.0;
  for (const NodeId h : cluster.hosts()) total += cluster.capacity(h).mem_mb;
  return total;
}

/// E15's racked fabric: 40 Table-1 hosts under four leaf switches, so a
/// blast has quarter-fabric radius; power striping (host % 4) cuts across
/// the racks, so the two domain kinds genuinely overlap.
model::PhysicalCluster make_racked_cluster(std::uint64_t seed, bool annotate) {
  util::Rng rng(seed);
  auto caps =
      workload::generate_hosts(40, workload::paper_host_profile(), rng);
  auto cluster = model::PhysicalCluster::build(
      topology::switch_tree(40, 10, 4), std::move(caps),
      workload::paper_link_props());
  if (annotate) workload::annotate_failure_domains(cluster, kPowerDomains);
  return cluster;
}

workload::ChurnOptions churn_options(double load, double horizon,
                                     const model::PhysicalCluster& cluster) {
  workload::ChurnOptions opts;
  opts.horizon = horizon;
  opts.mean_lifetime = 10.0;
  opts.lifetime = workload::LifetimeDistribution::kPareto;
  opts.min_guests = 4;
  opts.max_guests = 10;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};  // host-scale VMs, as in E13/E15
  opts.grow_probability = 0.0;            // growth would blur the tier ledger
  opts.replica_probability = 0.8;
  opts.replica_n = 3;
  opts.replica_k = 2;
  opts.gold_fraction = 0.4;
  opts.best_effort_fraction = 0.2;

  const double mean_guests =
      0.5 * static_cast<double>(opts.min_guests + opts.max_guests);
  const double mean_tenant_mem =
      mean_guests * 0.5 * (opts.profile.mem_mb.lo + opts.profile.mem_mb.hi);
  opts.arrival_rate = load * total_cluster_mem(cluster) /
                      (opts.mean_lifetime * mean_tenant_mem);
  return opts;
}

/// Churn + overlapping blast and power failure streams (the power stream
/// needs the *annotated* cluster so generator and orchestrator agree on
/// domain membership; the group member lists travel in the trace).
workload::ChurnTrace make_trace(const model::PhysicalCluster& cluster,
                                double load, double horizon,
                                std::uint64_t seed) {
  const auto copts = churn_options(load, horizon, cluster);
  workload::ChurnTrace trace =
      workload::generate_churn(copts, util::derive_seed(seed, 1));
  workload::FailureOptions fo;
  fo.horizon = horizon;
  fo.blast_mttf = 25.0;
  fo.blast_mttr = 5.0;
  fo.power_mttf = 30.0;
  fo.power_mttr = 6.0;
  fo.power_domains = kPowerDomains;
  workload::merge_events(
      trace,
      workload::generate_failures(fo, cluster, util::derive_seed(seed, 2)));
  return trace;
}

/// Strips the k-of-n spec from every arrive, leaving tiers intact: the
/// unreplicated baseline answers "what did replication itself buy?".
workload::ChurnTrace strip_replicas(workload::ChurnTrace trace) {
  for (workload::TenantEvent& ev : trace.events) {
    ev.replica_n = 0;
    ev.replica_k = 0;
  }
  return trace;
}

orchestrator::OrchestratorOptions e17_options() {
  orchestrator::OrchestratorOptions opts;
  opts.healer.policy = orchestrator::HealPolicy::kRepair;
  opts.healer.tier_aware = true;
  opts.queue_policy = orchestrator::QueuePolicy::kSmallestFirst;
  return opts;
}

struct VariantResult {
  double lost_gold = 0.0;
  double lost_standard = 0.0;
  double lost_best_effort = 0.0;
  std::size_t deferred = 0;
  std::size_t power = 0;
  std::size_t parked = 0;
  std::size_t dropped = 0;
  std::size_t violations = 0;
};

VariantResult run_variant(const model::PhysicalCluster& cluster,
                          const workload::ChurnTrace& trace) {
  orchestrator::Orchestrator orch(cluster, trace.profile, spread_pool(),
                                  e17_options());
  const auto& report = orch.run(trace);
  VariantResult r;
  r.lost_gold = report.tenant_minutes_lost_gold;
  r.lost_standard = report.tenant_minutes_lost_standard;
  r.lost_best_effort = report.tenant_minutes_lost_best_effort;
  r.deferred = report.replica_deferred;
  r.power = report.power_failures;
  r.parked = report.parked;
  r.dropped = report.heal_dropped;
  r.violations = report.invariant_violations.size();
  for (const std::string& v : report.invariant_violations) {
    std::printf("INVARIANT VIOLATION %s\n", v.c_str());
  }
  return r;
}

/// Threads gate: the sharded router with replica_spread must route a
/// replicated batch byte-identically at 1 and 4 worker threads.
bool router_threads_identical(std::uint64_t seed) {
  const auto fabric = make_racked_cluster(seed, /*annotate=*/true);
  const auto copts = churn_options(0.95, 40.0, fabric);
  const workload::ChurnTrace trace =
      workload::generate_churn(copts, util::derive_seed(seed, 3));

  std::vector<orchestrator::AdmissionRequest> batch;
  for (const workload::TenantEvent& ev : trace.events) {
    if (ev.kind != workload::EventKind::kArrive) continue;
    orchestrator::AdmissionRequest req;
    req.key = ev.tenant;
    req.venv = workload::make_event_venv(trace.profile, ev);
    req.seed = ev.seed;
    batch.push_back(std::move(req));
  }

  std::string sigs[2];
  for (int i = 0; i < 2; ++i) {
    orchestrator::RouterOptions ropts;
    ropts.shards = 4;
    ropts.threads = i == 0 ? 1 : 4;
    ropts.replica_spread = true;
    orchestrator::PlacementRouter router(fabric, ropts);
    router.admit_batch(batch, util::derive_seed(seed, 4));
    sigs[i] = router.decision_signature();
  }
  return sigs[0] == sigs[1];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmn::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }

  const std::size_t bases =
      smoke ? 2 : std::max<std::size_t>(4, bench_reps() / 8);
  const double horizon = smoke ? 60.0 : 100.0;
  const double load = 0.95;

  std::printf("E17: k-of-n replicas with SLA tiers, anti-affine across "
              "blast + power domains, %zu seed bases%s\n\n",
              bases, smoke ? " (smoke)" : "");

  util::Table table({"variant", "gold lost", "std lost", "b-e lost",
                     "deferred", "power", "parked", "dropped"});

  const char* names[3] = {"replicated", "blind", "unreplicated"};
  double gold_total[3] = {0.0, 0.0, 0.0};
  std::size_t violations = 0;

  util::RunningStats gold[3], standard[3], best_effort[3], deferred[3],
      power[3], parked[3], dropped[3];
  for (std::size_t base = 0; base < bases; ++base) {
    const auto seed = util::derive_seed(env_seed(), 48, base);
    const auto annotated = make_racked_cluster(seed, /*annotate=*/true);
    const auto bare = make_racked_cluster(seed, /*annotate=*/false);
    const auto trace = make_trace(annotated, load, horizon, seed);
    const auto stripped = strip_replicas(trace);

    for (int v = 0; v < 3; ++v) {
      const auto& cluster = v == 1 ? bare : annotated;
      const auto& tr = v == 2 ? stripped : trace;
      const VariantResult r = run_variant(cluster, tr);
      gold[v].add(r.lost_gold);
      standard[v].add(r.lost_standard);
      best_effort[v].add(r.lost_best_effort);
      deferred[v].add(static_cast<double>(r.deferred));
      power[v].add(static_cast<double>(r.power));
      parked[v].add(static_cast<double>(r.parked));
      dropped[v].add(static_cast<double>(r.dropped));
      gold_total[v] += r.lost_gold;
      violations += r.violations;
    }
  }
  for (int v = 0; v < 3; ++v) {
    table.add_row({names[v], util::Table::fmt(gold[v].mean(), 1),
                   util::Table::fmt(standard[v].mean(), 1),
                   util::Table::fmt(best_effort[v].mean(), 1),
                   util::Table::fmt(deferred[v].mean(), 1),
                   util::Table::fmt(power[v].mean(), 1),
                   util::Table::fmt(parked[v].mean(), 1),
                   util::Table::fmt(dropped[v].mean(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  write_file(out_dir() / "replicas_e17.csv", table.to_csv());

  // Determinism gates: fresh re-run and v4 record/replay must reproduce
  // the live decision signature bit-for-bit.
  bool rerun_ok = true, replay_ok = true;
  {
    const auto seed = util::derive_seed(env_seed(), 49);
    const auto cluster = make_racked_cluster(seed, /*annotate=*/true);
    const auto trace = make_trace(cluster, load, horizon, seed);
    orchestrator::Orchestrator live(cluster, trace.profile, spread_pool(),
                                    e17_options());
    const std::string sig = live.run(trace).decision_signature();

    orchestrator::Orchestrator again(cluster, trace.profile, spread_pool(),
                                     e17_options());
    rerun_ok = again.run(trace).decision_signature() == sig;

    const auto reloaded = io::read_trace_or_throw(io::write_trace(trace));
    orchestrator::Orchestrator replayed(cluster, reloaded.profile,
                                        spread_pool(), e17_options());
    replay_ok = replayed.run(reloaded).decision_signature() == sig;
    std::printf("\ndeterminism: fresh re-run %s, v4 record/replay %s "
                "(%zu decisions)\n",
                rerun_ok ? "identical" : "DIVERGED",
                replay_ok ? "identical" : "DIVERGED",
                live.report().decisions.size());
  }

  const bool threads_ok =
      router_threads_identical(util::derive_seed(env_seed(), 50));
  std::printf("determinism: router threads=1 vs threads=4 %s\n",
              threads_ok ? "identical" : "DIVERGED");

  // Win gate: the full subsystem must lose strictly fewer gold
  // tenant-minutes than both ablations in aggregate.
  const bool beats_blind = gold_total[0] < gold_total[1];
  const bool beats_unreplicated = gold_total[0] < gold_total[2];

  std::printf("\nMeasured finding: replicated gold tenants lose %.1f "
              "tenant-minutes where anti-affinity-blind placement loses "
              "%.1f and unreplicated tenants lose %.1f — spreading a "
              "group across blast and power domains keeps it quorate "
              "through a correlated outage, and a quorate group defers "
              "repair instead of gambling on re-admission into a full "
              "cluster.\n",
              gold_total[0], gold_total[1], gold_total[2]);
  std::printf("checks: invariant violations %zu, rerun %s, replay %s, "
              "threads %s, beats-blind %s, beats-unreplicated %s\n",
              violations, rerun_ok ? "ok" : "FAILED",
              replay_ok ? "ok" : "FAILED", threads_ok ? "ok" : "FAILED",
              beats_blind ? "ok" : "FAILED",
              beats_unreplicated ? "ok" : "FAILED");
  return (violations == 0 && rerun_ok && replay_ok && threads_ok &&
          beats_blind && beats_unreplicated)
             ? 0
             : 1;
}
