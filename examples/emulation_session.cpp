// Full emulation-session walkthrough — the paper's project context
// (Section 1): define an emulated distributed system, map it with HMN,
// deploy it, run the application, then grow the experiment live and do it
// again, all through the emulator::EmulationSession frontend.
//
//   $ ./emulation_session [seed]
#include <cstdio>
#include <cstdlib>

#include "emulator/session.h"
#include "util/rng.h"
#include "workload/scenario.h"

using namespace hmn;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  // The testbed: the paper's 40-host switched cluster; the VMM costs each
  // host 128 MB and 50 MIPS (Section 3.1's overhead deduction).
  emulator::SessionConfig cfg;
  cfg.seed = seed;
  cfg.vmm_overhead = {50.0, 128.0, 8.0};
  cfg.experiment.iterations = 8;
  cfg.experiment.compute_seconds = 3.0;
  emulator::EmulationSession session(
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, seed),
      cfg);

  // Define a 150-guest emulated grid with a random connected overlay.
  util::Rng rng(seed + 1);
  std::vector<GuestId> guests;
  for (int i = 0; i < 150; ++i) {
    guests.push_back(session.add_guest({rng.uniform(50, 100),
                                        rng.uniform(128, 256),
                                        rng.uniform(100, 200)}));
  }
  for (std::size_t i = 1; i < guests.size(); ++i) {
    session.add_link(guests[i], guests[rng.index(i)],
                     {rng.uniform(0.5, 1.0), rng.uniform(30, 60)});
  }

  if (!session.map() || !session.deploy() || !session.run()) {
    std::printf("session failed: %s\n", session.last_error().c_str());
    return 1;
  }

  // The tester scales the experiment up by 50 nodes and reruns; the new
  // guests are placed incrementally (deployed VMs never move).
  for (int i = 0; i < 50; ++i) {
    const GuestId g = session.add_guest({rng.uniform(50, 100),
                                         rng.uniform(128, 256),
                                         rng.uniform(100, 200)});
    session.add_link(g, guests[rng.index(guests.size())],
                     {rng.uniform(0.5, 1.0), rng.uniform(30, 60)});
    guests.push_back(g);
  }
  if (!session.map() || !session.deploy() || !session.run()) {
    std::printf("grown session failed: %s\n", session.last_error().c_str());
    return 1;
  }

  // A host dies mid-experiment: the session repairs the mapping (evicted
  // VMs re-placed, severed paths re-routed), redeploys only the refugees,
  // and the experiment reruns.
  const NodeId victim = session.mapping().guest_host[0];
  if (!session.inject_host_failure(victim) || !session.run()) {
    std::printf("failure recovery failed: %s\n",
                session.last_error().c_str());
    return 1;
  }

  std::printf("%s", session.report().c_str());
  std::printf("\ntotal simulated testbed time: %.1f s; experiment makespan "
              "%.1f s over %llu messages\n",
              session.simulated_seconds(),
              session.experiment_result().makespan_seconds,
              static_cast<unsigned long long>(
                  session.experiment_result().messages_delivered));
  return 0;
}
