// Fault-injection walkthrough: a churn workload on the paper's switched
// cluster while hosts and links fail and recover, healed by the
// orchestrator's transactional Healer.
//
// The failure stream (workload::generate_failures) overlays exponential
// MTTF/MTTR renewal processes per host and per physical link onto the
// tenant timeline; everything rides the same JSONL record/replay format,
// so the printed decision log replays bit-identically from the saved file.
//
//   $ ./failure_demo [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "util/rng.h"
#include "core/hmn_mapper.h"
#include "io/trace.h"
#include "orchestrator/orchestrator.h"
#include "util/table.h"
#include "workload/scenario.h"

using namespace hmn;

namespace {

extensions::HeuristicPool hmn_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return pool;
}

bool is_heal_decision(orchestrator::Decision d) {
  switch (d) {
    case orchestrator::Decision::kHealed:
    case orchestrator::Decision::kDegraded:
    case orchestrator::Decision::kRestored:
    case orchestrator::Decision::kParked:
    case orchestrator::Decision::kReadmitted:
    case orchestrator::Decision::kHealDropped:
      return true;
    default:
      return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, seed);

  // A busy tenant stream...
  workload::ChurnOptions copts;
  copts.arrival_rate = 0.5;
  copts.horizon = 60.0;
  copts.mean_lifetime = 15.0;
  copts.min_guests = 4;
  copts.max_guests = 10;
  copts.density = 0.2;
  copts.profile = workload::high_level_profile();
  copts.profile.mem_mb = {512.0, 1536.0};
  workload::ChurnTrace trace = workload::generate_churn(copts, seed);

  // ...interleaved with substrate failures: every host and link is an
  // independent up/down renewal process.
  workload::FailureOptions fopts;
  fopts.horizon = copts.horizon;
  fopts.host_mttf = 120.0;
  fopts.host_mttr = 5.0;
  fopts.link_mttf = 100.0;
  fopts.link_mttr = 5.0;
  workload::merge_events(
      trace,
      workload::generate_failures(fopts, cluster, util::derive_seed(seed, 9)));

  const std::filesystem::path path = "failure_trace.jsonl";
  io::save_trace(path, trace);
  std::printf("recorded %zu events (tenant churn + failures) to %s\n\n",
              trace.events.size(), path.string().c_str());

  orchestrator::Orchestrator orch(cluster, trace.profile, hmn_pool(), {});
  const auto& report = orch.run(trace);

  // Narrate the failure/healing part of the decision log.
  std::printf("failure and healing decisions:\n");
  for (const auto& d : report.decisions) {
    const bool failure_event = workload::is_failure_event(d.kind);
    if (!failure_event && !is_heal_decision(d.decision)) continue;
    if (failure_event && !is_heal_decision(d.decision)) {
      std::printf("  t=%6.2f  %-14s element %u\n", d.time,
                  to_string(d.decision), d.tenant);
    } else {
      std::printf("  t=%6.2f    -> %-12s tenant %u%s\n", d.time,
                  to_string(d.decision), d.tenant,
                  d.queue_wait > 0.0 ? "  (after outage)" : "");
    }
  }

  util::Table table({"metric", "value"});
  auto row = [&](const char* name, double v, int digits) {
    table.add_row({name, util::Table::fmt(v, digits)});
  };
  row("host failures", double(report.host_failures), 0);
  row("link failures", double(report.link_failures), 0);
  row("recoveries", double(report.recoveries), 0);
  row("healed in place", double(report.healed), 0);
  row("degraded (dark links)", double(report.degraded), 0);
  row("restored", double(report.restored), 0);
  row("parked (evicted)", double(report.parked), 0);
  row("readmitted", double(report.readmitted), 0);
  row("heal-dropped", double(report.heal_dropped), 0);
  row("tenant-minutes lost", report.tenant_minutes_lost, 2);
  row("degraded-minutes", report.degraded_minutes, 2);
  row("invariant violations", double(report.invariant_violations.size()), 0);
  std::printf("\n%s\n", table.to_string().c_str());

  // The saved file replays bit-identically — failures included.
  const auto loaded = io::load_trace(path);
  if (!loaded.has_value()) {
    std::printf("failed to reload %s\n", path.string().c_str());
    return 1;
  }
  orchestrator::Orchestrator replayed(cluster, loaded->profile, hmn_pool(),
                                      {});
  const bool identical = replayed.run(*loaded).decision_signature() ==
                         report.decision_signature();
  std::printf("replay from file %s the in-memory run (%zu decisions)\n",
              identical ? "matches" : "DIVERGES from",
              report.decisions.size());
  const bool healthy = report.invariant_violations.empty();
  if (!healthy) {
    for (const auto& v : report.invariant_violations) {
      std::printf("VIOLATION: %s\n", v.c_str());
    }
  }
  return identical && healthy ? 0 : 1;
}
