// mapping_tool — map a JSON-described virtual environment onto a
// JSON-described cluster from the command line; the standalone-tool face
// of the library (an emulation frontend can shell out to it).
//
//   $ ./mapping_tool cluster.json venv.json [--mapper=...] [--seed=N]
//         [--out=mapping.json] [--dot=mapping.dot] [--quiet]
//     with --mapper one of: hmn, hn, r, ra, hs, minhosts, greedyrank, pool
//   $ ./mapping_tool cluster.json venv.json --check=mapping.json
//
// Prints a human summary to stdout (unless --quiet) and exits 0 on a valid
// mapping, 1 on failure, 2 on usage/spec errors.  With --out/--dot the
// mapping is written as JSON / Graphviz.  --check validates an existing
// mapping file against the paper's constraints instead of computing one.
//
// Generate example inputs with --emit-sample, which writes
// sample_cluster.json and sample_venv.json to the working directory.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "baselines/composite_mappers.h"
#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "extensions/heuristic_pool.h"
#include "extensions/mapper_registry.h"
#include "extensions/min_hosts_mapper.h"
#include "io/dot.h"
#include "io/json.h"
#include "io/spec.h"
#include "workload/scenario.h"

using namespace hmn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mapping_tool <cluster.json> <venv.json>\n"
               "                    [--mapper=hmn|hn|r|ra|hs|minhosts|pool]\n"
               "                    [--seed=N] [--out=FILE] [--dot=FILE] "
               "[--quiet]\n"
               "       mapping_tool --emit-sample\n");
  return 2;
}

int emit_sample() {
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, 1);
  const workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 2);
  std::ofstream("sample_cluster.json") << io::to_json(cluster);
  std::ofstream("sample_venv.json") << io::to_json(venv);
  std::printf("wrote sample_cluster.json (paper torus, 40 hosts) and "
              "sample_venv.json (100 guests)\n");
  return 0;
}

core::MapperPtr make_mapper(const std::string& name) {
  extensions::RegistryOptions opts;
  opts.max_tries = 1000;
  return extensions::make_named_mapper(name, opts);
}

}  // namespace

int main(int argc, char** argv) {
  std::string cluster_path, venv_path, mapper_name = "hmn";
  std::string out_path, dot_path, check_path;
  std::uint64_t seed = 42;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit-sample") return emit_sample();
    if (arg.rfind("--mapper=", 0) == 0) {
      mapper_name = arg.substr(9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--dot=", 0) == 0) {
      dot_path = arg.substr(6);
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    } else if (cluster_path.empty()) {
      cluster_path = arg;
    } else if (venv_path.empty()) {
      venv_path = arg;
    } else {
      return usage();
    }
  }
  if (cluster_path.empty() || venv_path.empty()) return usage();

  auto cluster_or = io::load_cluster_file(cluster_path);
  if (auto* err = std::get_if<io::SpecError>(&cluster_or)) {
    std::fprintf(stderr, "error: %s\n", err->message.c_str());
    return 2;
  }
  auto venv_or = io::load_venv_file(venv_path);
  if (auto* err = std::get_if<io::SpecError>(&venv_or)) {
    std::fprintf(stderr, "error: %s\n", err->message.c_str());
    return 2;
  }
  const auto& cluster = std::get<model::PhysicalCluster>(cluster_or);
  const auto& venv = std::get<model::VirtualEnvironment>(venv_or);

  if (!check_path.empty()) {
    // Validation mode: check an existing mapping against Eqs. 1-9.
    auto mapping_or = io::load_mapping_file(check_path);
    if (auto* err = std::get_if<io::SpecError>(&mapping_or)) {
      std::fprintf(stderr, "error: %s\n", err->message.c_str());
      return 2;
    }
    const auto& mapping = std::get<core::Mapping>(mapping_or);
    const auto report = core::validate_mapping(cluster, venv, mapping);
    if (!report.ok()) {
      std::printf("INVALID mapping:\n%s\n", report.summary().c_str());
      return 1;
    }
    std::printf("valid mapping; load-balance factor %.2f MIPS\n",
                core::load_balance_factor(cluster, venv, mapping));
    return 0;
  }

  core::MapOutcome outcome;
  if (mapper_name == "pool") {
    outcome = extensions::default_pool().first_success(cluster, venv, seed);
  } else {
    const auto mapper = make_mapper(mapper_name);
    if (mapper == nullptr) {
      std::fprintf(stderr, "unknown mapper: %s\n", mapper_name.c_str());
      return usage();
    }
    outcome = mapper->map(cluster, venv, seed);
  }

  if (!outcome.ok()) {
    if (!quiet) {
      std::printf("mapping failed: %s (%s)\n", core::to_string(outcome.error),
                  outcome.detail.c_str());
    }
    return 1;
  }
  const auto report = core::validate_mapping(cluster, venv, *outcome.mapping);
  if (!report.ok()) {
    std::fprintf(stderr, "internal error — mapper produced invalid "
                         "mapping:\n%s\n", report.summary().c_str());
    return 1;
  }

  if (!quiet) {
    std::printf("mapped %zu guests and %zu virtual links onto %zu hosts in "
                "%.4f s\n",
                venv.guest_count(), venv.link_count(), cluster.host_count(),
                outcome.stats.total_seconds);
    std::printf("load-balance factor (Eq. 10): %.2f MIPS; inter-host links "
                "routed: %zu\n",
                core::load_balance_factor(cluster, venv, *outcome.mapping),
                outcome.stats.links_routed);
  }
  if (!out_path.empty()) {
    std::ofstream(out_path) << io::to_json(outcome);
    if (!quiet) std::printf("wrote %s\n", out_path.c_str());
  }
  if (!dot_path.empty()) {
    std::ofstream(dot_path) << io::to_dot(cluster, venv, *outcome.mapping);
    if (!quiet) std::printf("wrote %s\n", dot_path.c_str());
  }
  return 0;
}
