// Multi-tenant testbed walkthrough: several testers share the paper's
// cluster concurrently; the manager admits each against residual capacity,
// rejects what no longer fits, and recovers capacity on departure —
// relaxing the paper's one-tester-at-a-time assumption (Section 3.2).
//
//   $ ./multi_tenant [seed]
#include <cstdio>
#include <cstdlib>

#include "emulator/tenancy.h"
#include "util/table.h"
#include "workload/scenario.h"
#include "workload/venv_generator.h"

using namespace hmn;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  emulator::TenancyManager mgr(
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, seed));
  util::Rng rng(seed + 1);

  auto make_tenant = [&](std::size_t guests) {
    workload::VenvGenOptions opts;
    opts.guest_count = guests;
    opts.density = 0.05;
    opts.profile = workload::high_level_profile();
    opts.normalize_to = &mgr.cluster();
    opts.capacity_fraction = 1.0;
    return workload::generate_venv(opts, rng);
  };

  util::Table log({"event", "result", "tenants", "guests", "mem util",
                   "peak link"});
  auto snapshot = [&](const char* event, const std::string& result) {
    const auto u = mgr.utilization();
    log.add_row({event, result, std::to_string(u.tenants),
                 std::to_string(u.guests), util::Table::fmt(u.mem_fraction, 2),
                 util::Table::fmt(u.peak_link_fraction, 3)});
  };

  // Three testers arrive with increasingly large environments.
  std::vector<emulator::TenantId> ids;
  for (const std::size_t guests : {60u, 120u, 240u}) {
    const auto r = mgr.admit("tester", make_tenant(guests),
                             util::derive_seed(seed, guests));
    snapshot(("admit " + std::to_string(guests) + " guests").c_str(),
             r.ok() ? "ok" : r.detail);
    if (r.ok()) ids.push_back(*r.tenant);
  }
  // A fourth, oversized request is rejected without disturbing anyone.
  {
    const auto r = mgr.admit("greedy", make_tenant(1200), seed + 9);
    snapshot("admit 1200 guests", r.ok() ? "ok" : "rejected");
  }
  // The first tester leaves; the oversized request now may fit.
  if (!ids.empty()) {
    mgr.release(ids.front());
    snapshot("release first tenant", "ok");
    const auto r = mgr.admit("greedy retry", make_tenant(600), seed + 10);
    snapshot("admit 600 guests", r.ok() ? "ok" : "rejected");
  }

  std::printf("multi-tenant session on the 40-host torus:\n%s",
              log.to_string().c_str());
  return 0;
}
