// P2P-protocol emulation (the paper's low-level use case, Section 5,
// modeled on Quetier et al.'s V-DS experiments): thousands of slim VMs
// running only a protocol stack, at ratios of 20-50 guests per host.
//
//   $ ./p2p_emulation [ratio] [seed]
//
// Demonstrates the large-instance behavior the paper highlights: mapping
// 2000 guests / ~20k links is dominated by the Networking stage, yet the
// switched cluster routes in well under a second because each virtual link
// has exactly one 2-hop path.
#include <cstdio>
#include <cstdlib>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "workload/scenario.h"

using namespace hmn;

namespace {

void run_on(workload::ClusterKind kind, const workload::Scenario& scenario,
            std::uint64_t seed) {
  const auto cluster = workload::make_paper_cluster(kind, seed);
  const auto venv = workload::make_scenario_venv(scenario, cluster, seed + 1);

  const core::HmnMapper mapper;
  const auto outcome = mapper.map(cluster, venv, seed);
  std::printf("%-10s: ", to_string(kind));
  if (!outcome.ok()) {
    std::printf("FAILED (%s)\n", outcome.detail.c_str());
    return;
  }
  const bool valid =
      core::validate_mapping(cluster, venv, *outcome.mapping).ok();
  std::printf("%zu guests, %zu links (%zu inter-host) mapped in %.3f s "
              "[hosting %.3f s, networking %.3f s], lbf %.1f, valid=%s\n",
              venv.guest_count(), venv.link_count(),
              outcome.stats.links_routed, outcome.stats.total_seconds,
              outcome.stats.hosting_seconds,
              outcome.stats.networking_seconds,
              core::load_balance_factor(cluster, venv, *outcome.mapping),
              valid ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const double ratio = argc > 1 ? std::atof(argv[1]) : 50.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const workload::Scenario scenario{ratio, 0.01,
                                    workload::WorkloadKind::kLowLevel};
  std::printf("P2P emulation workload, ratio %.0f:1, density %.2f\n", ratio,
              scenario.density);
  run_on(workload::ClusterKind::kTorus2D, scenario, seed);
  run_on(workload::ClusterKind::kSwitched, scenario, seed);
  return 0;
}
