// grid_tool — run a JSON-described evaluation suite from the command line:
// the whole expfw pipeline (grid runner, aggregation, the paper's table
// renderers, JSON record dump) without writing C++.
//
//   $ ./grid_tool suite.json [--out=DIR]
//   $ ./grid_tool --emit-sample        # writes sample_suite.json
//
// Output: objective and time tables on stdout; CSVs and a records.json
// with every run (one object per scenario x cluster x mapper x rep) in
// the output directory (default "grid_out").
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "expfw/aggregate.h"
#include "expfw/report.h"
#include "extensions/mapper_registry.h"
#include "io/json.h"
#include "expfw/suite.h"

using namespace hmn;

namespace {

int usage() {
  std::fprintf(stderr, "usage: grid_tool <suite.json> [--out=DIR]\n"
                       "       grid_tool --emit-sample\n");
  return 2;
}

int emit_sample() {
  const char* sample = R"({
  "repetitions": 10,
  "seed": 42,
  "clusters": ["torus", "switched"],
  "mappers": ["hmn", "ra", "minhosts"],
  "scenarios": [
    {"ratio": 2.5, "density": 0.02, "workload": "high"},
    {"ratio": 5.0, "density": 0.02, "workload": "high"},
    {"ratio": 20,  "density": 0.01, "workload": "low"}
  ]
}
)";
  std::ofstream("sample_suite.json") << sample;
  std::printf("wrote sample_suite.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite_path;
  std::filesystem::path out_dir = "grid_out";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit-sample") return emit_sample();
    if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else if (suite_path.empty()) {
      suite_path = arg;
    } else {
      return usage();
    }
  }
  if (suite_path.empty()) return usage();

  auto suite_or = expfw::load_suite_file(suite_path);
  if (auto* err = std::get_if<io::SpecError>(&suite_or)) {
    std::fprintf(stderr, "error: %s\n", err->message.c_str());
    return 2;
  }
  auto& suite = std::get<expfw::SuiteSpec>(suite_or);

  std::vector<core::MapperPtr> owned;
  std::vector<const core::Mapper*> mappers;
  std::vector<std::string> names;
  for (const std::string& name : suite.mapper_names) {
    auto mapper = extensions::make_named_mapper(name);
    if (mapper == nullptr) {
      std::fprintf(stderr, "error: unknown mapper \"%s\" (known:", name.c_str());
      for (const auto& known : extensions::known_mapper_names()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
    names.push_back(mapper->name());
    mappers.push_back(mapper.get());
    owned.push_back(std::move(mapper));
  }

  std::printf("running %zu scenarios x %zu clusters x %zu mappers x %zu "
              "reps...\n",
              suite.grid.scenarios.size(), suite.grid.clusters.size(),
              mappers.size(), suite.grid.repetitions);
  const auto records = expfw::run_grid(suite.grid, mappers);
  const auto summary = expfw::summarize(records);

  const auto objective = expfw::render_objective_table(
      suite.grid.scenarios, suite.grid.clusters, names, summary);
  const auto time = expfw::render_time_table(
      suite.grid.scenarios, suite.grid.clusters, names, summary);
  std::printf("\nobjective (Eq. 10) and failures:\n%s", objective.to_string().c_str());
  std::printf("\nmapping time (s):\n%s", time.to_string().c_str());

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  std::ofstream(out_dir / "objective.csv") << objective.to_csv();
  std::ofstream(out_dir / "time.csv") << time.to_csv();
  std::ofstream(out_dir / "records.json") << expfw::to_json(records);
  std::printf("\nwrote %s/{objective.csv,time.csv,records.json}\n",
              out_dir.string().c_str());
  return 0;
}
