// Quickstart: build a small cluster and virtual environment by hand, run
// the HMN heuristic, validate the result, and inspect the mapping.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API:
//   topology::* -> model::PhysicalCluster -> model::VirtualEnvironment
//   -> core::HmnMapper::map -> core::validate_mapping
//   -> core::load_balance_factor.
#include <cstdio>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "topology/topologies.h"

using namespace hmn;

int main() {
  // --- Physical side: a 3x3 torus of heterogeneous hosts, 1 Gbps / 5 ms
  // links (the paper's link parameters).
  std::vector<model::HostCapacity> hosts;
  for (int i = 0; i < 9; ++i) {
    hosts.push_back({
        .proc_mips = 1000.0 + 250.0 * i,  // heterogeneous CPUs
        .mem_mb = 2048.0,
        .stor_gb = 1024.0,
    });
  }
  const auto cluster = model::PhysicalCluster::build(
      topology::torus_2d(3, 3), std::move(hosts),
      model::LinkProps{.bandwidth_mbps = 1000.0, .latency_ms = 5.0});

  // --- Virtual side: a 12-guest ring of VMs, as a tester would describe an
  // emulated distributed system.
  model::VirtualEnvironment venv;
  std::vector<GuestId> guests;
  for (int i = 0; i < 12; ++i) {
    guests.push_back(venv.add_guest({
        .proc_mips = 75.0,
        .mem_mb = 192.0,
        .stor_gb = 150.0,
    }));
  }
  for (std::size_t i = 0; i < guests.size(); ++i) {
    venv.add_link(guests[i], guests[(i + 1) % guests.size()],
                  {.bandwidth_mbps = 0.75, .max_latency_ms = 45.0});
  }

  // --- Map it.
  const core::HmnMapper mapper;
  const core::MapOutcome outcome = mapper.map(cluster, venv, /*seed=*/42);
  if (!outcome.ok()) {
    std::printf("mapping failed: %s (%s)\n", core::to_string(outcome.error),
                outcome.detail.c_str());
    return 1;
  }

  // --- Verify against the paper's formal constraints (Eqs. 1-9).
  const auto report = core::validate_mapping(cluster, venv, *outcome.mapping);
  std::printf("mapping valid: %s\n", report.ok() ? "yes" : "NO");

  // --- Inspect.
  std::printf("load-balance factor (Eq. 10): %.2f MIPS\n",
              core::load_balance_factor(cluster, venv, *outcome.mapping));
  std::printf("migrations performed: %zu\n", outcome.stats.migrations);
  std::printf("inter-host links routed: %zu of %zu\n",
              outcome.stats.links_routed, venv.link_count());
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    std::printf("  guest %zu -> host %u\n", g,
                outcome.mapping->guest_host[g].value());
  }
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto& path = outcome.mapping->link_paths[l];
    if (path.empty()) {
      std::printf("  vlink %zu: intra-host\n", l);
    } else {
      std::printf("  vlink %zu: %zu physical hop(s)\n", l, path.size());
    }
  }
  return report.ok() ? 0 : 1;
}
