// Online orchestrator walkthrough: record a churn trace to JSONL, read it
// back, and replay it against the paper's switched cluster with background
// defragmentation off and on.
//
// The trace file is the orchestrator's record/replay format (io/trace.h):
// a header line carrying the guest profile, then one event per line whose
// seed re-materializes the tenant's virtual environment on consumption —
// so the same file replays to bit-identical decisions on any machine.
//
//   $ ./orchestrator_demo [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "core/hmn_mapper.h"
#include "io/trace.h"
#include "orchestrator/orchestrator.h"
#include "util/table.h"
#include "workload/scenario.h"

using namespace hmn;

namespace {

extensions::HeuristicPool hmn_pool() {
  extensions::HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  return pool;
}

const orchestrator::OrchestratorReport& replay(
    orchestrator::Orchestrator& orch, const workload::ChurnTrace& trace) {
  return orch.run(trace);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  // A small but busy workload: ~30 tenants over 80 time units against the
  // 40-host switched cluster, host-scale VMs so admission actually binds.
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, seed);
  workload::ChurnOptions opts;
  opts.arrival_rate = 0.4;
  opts.horizon = 80.0;
  opts.mean_lifetime = 20.0;
  opts.min_guests = 4;
  opts.max_guests = 10;
  opts.density = 0.2;
  opts.profile = workload::high_level_profile();
  opts.profile.mem_mb = {512.0, 1536.0};
  opts.grow_probability = 0.3;
  opts.max_grow_guests = 3;
  const auto trace = workload::generate_churn(opts, seed);

  // Record.
  const std::filesystem::path path = "orchestrator_trace.jsonl";
  io::save_trace(path, trace);
  const std::string text = io::write_trace(trace);
  std::printf("recorded %zu events to %s; first lines:\n\n",
              trace.events.size(), path.string().c_str());
  std::istringstream lines(text);
  std::string line;
  for (int i = 0; i < 4 && std::getline(lines, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("  ...\n\n");

  // Replay from the file, once per defrag policy.
  const auto loaded = io::load_trace(path);
  if (!loaded.has_value()) {
    std::printf("failed to reload %s\n", path.string().c_str());
    return 1;
  }

  util::Table table({"metric", "defrag off", "defrag on"});
  const orchestrator::OrchestratorReport* reports[2] = {nullptr, nullptr};
  orchestrator::Orchestrator off(cluster, loaded->profile, hmn_pool(), [] {
    orchestrator::OrchestratorOptions o;
    o.defrag_every_departures = 0;
    return o;
  }());
  orchestrator::Orchestrator on(cluster, loaded->profile, hmn_pool(), {});
  reports[0] = &replay(off, *loaded);
  reports[1] = &replay(on, *loaded);

  auto row = [&](const char* name, auto metric, int digits) {
    table.add_row({name, util::Table::fmt(metric(*reports[0]), digits),
                   util::Table::fmt(metric(*reports[1]), digits)});
  };
  using Report = orchestrator::OrchestratorReport;
  row("arrivals", [](const Report& r) { return double(r.arrivals); }, 0);
  row("admitted immediately",
      [](const Report& r) { return double(r.admitted_immediately); }, 0);
  row("backfilled from queue",
      [](const Report& r) { return double(r.admitted_from_queue); }, 0);
  row("abandoned in queue",
      [](const Report& r) { return double(r.abandoned); }, 0);
  row("growths honored", [](const Report& r) {
        return double(r.grown_in_place + r.grown_by_remap);
      }, 0);
  row("acceptance rate",
      [](const Report& r) { return r.acceptance_rate(); }, 3);
  row("mean queue wait",
      [](const Report& r) { return r.mean_queue_wait(); }, 2);
  row("defrag passes",
      [](const Report& r) { return double(r.defrag.passes); }, 0);
  row("guests migrated",
      [](const Report& r) { return double(r.defrag.migrations); }, 0);
  row("lbf reduction (total)",
      [](const Report& r) { return r.defrag.lbf_reduction; }, 1);
  row("decision p99 (us)",
      [](const Report& r) { return r.latency_percentile_us(99.0); }, 0);
  std::printf("%s\n", table.to_string().c_str());

  // The replayed decisions are bit-identical to a fresh run of the same
  // trace — the record/replay guarantee.
  orchestrator::Orchestrator fresh(cluster, trace.profile, hmn_pool(), {});
  const bool identical = fresh.run(trace).decision_signature() ==
                         reports[1]->decision_signature();
  std::printf("replay from file %s the in-memory run (%zu decisions)\n",
              identical ? "matches" : "DIVERGES from",
              reports[1]->decisions.size());
  return identical ? 0 : 1;
}
