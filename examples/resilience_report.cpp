// Failure-resilience report for a mapped emulation: for every host, what
// would its failure cost?  Combines the repair engine (core/repair.h) with
// structural criticality (graph::articulation_points) — on a torus no
// single host disconnects the fabric, so every failure is repairable
// unless capacity runs out; on a cascaded-switch cluster the switches are
// articulation points and their failure is unrepairable by definition.
//
//   $ ./resilience_report [ratio] [seed] [torus|switched]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/hmn_mapper.h"
#include "core/repair.h"
#include "core/validator.h"
#include "graph/metrics.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/scenario.h"

using namespace hmn;

int main(int argc, char** argv) {
  const double ratio = argc > 1 ? std::atof(argv[1]) : 5.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 13;
  const auto kind = (argc > 3 && std::strcmp(argv[3], "switched") == 0)
                        ? workload::ClusterKind::kSwitched
                        : workload::ClusterKind::kTorus2D;

  const auto cluster = workload::make_paper_cluster(kind, seed);
  const workload::Scenario scenario{
      ratio, ratio > 10 ? 0.01 : 0.02,
      ratio > 10 ? workload::WorkloadKind::kLowLevel
                 : workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(scenario, cluster, seed + 1);

  const auto base = core::HmnMapper().map(cluster, venv, seed);
  if (!base.ok()) {
    std::printf("mapping failed: %s\n", base.detail.c_str());
    return 1;
  }

  // Structural criticality of the fabric itself.
  const auto cuts = graph::articulation_points(cluster.graph());
  std::printf("cluster: %s, %zu hosts, %zu switches; %zu articulation "
              "point(s) in the fabric\n",
              to_string(kind), cluster.host_count(),
              cluster.node_count() - cluster.host_count(), cuts.size());

  // Per-host failure drill.
  std::size_t repairable = 0;
  util::RunningStats moved, rerouted, repair_ms;
  util::Table worst({"host", "guests moved", "links rerouted",
                     "repair time (ms)"});
  struct Row {
    unsigned host;
    core::RepairStats stats;
    double ms;
  };
  std::vector<Row> rows;
  for (const NodeId h : cluster.hosts()) {
    core::RepairStats stats;
    const auto out = core::repair_mapping(cluster, venv, *base.mapping, h,
                                          &stats);
    if (!out.ok()) continue;
    ++repairable;
    moved.add(static_cast<double>(stats.guests_moved));
    rerouted.add(static_cast<double>(stats.links_rerouted));
    repair_ms.add(out.stats.total_seconds * 1e3);
    rows.push_back({h.value(), stats, out.stats.total_seconds * 1e3});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.stats.guests_moved > b.stats.guests_moved;
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, rows.size()); ++i) {
    worst.add_row({std::to_string(rows[i].host),
                   std::to_string(rows[i].stats.guests_moved),
                   std::to_string(rows[i].stats.links_rerouted),
                   util::Table::fmt(rows[i].ms, 2)});
  }

  std::printf("host-failure drill over %zu guests / %zu links:\n",
              venv.guest_count(), venv.link_count());
  std::printf("  repairable failures: %zu of %zu hosts\n", repairable,
              cluster.host_count());
  std::printf("  mean surgery: %.1f guests moved, %.1f links rerouted, "
              "%.2f ms repair time\n",
              moved.mean(), rerouted.mean(), repair_ms.mean());
  std::printf("\nfive costliest host failures:\n%s", worst.to_string().c_str());
  return 0;
}
