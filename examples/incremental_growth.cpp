// Incremental growth of a running emulation — the testbed workflow the
// paper's automated-emulator project targets: a tester maps and deploys an
// initial virtual environment, then repeatedly adds emulated nodes and
// links; each increment is placed over residual capacity *without moving
// any deployed VM* (core::extend_mapping), falling back to a full HMN
// remap only when the increment cannot fit.
//
//   $ ./incremental_growth [waves] [guests_per_wave] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/hmn_mapper.h"
#include "core/incremental.h"
#include "core/objective.h"
#include "core/validator.h"
#include "util/rng.h"
#include "workload/scenario.h"

using namespace hmn;

int main(int argc, char** argv) {
  const int waves = argc > 1 ? std::atoi(argv[1]) : 6;
  const int per_wave = argc > 2 ? std::atoi(argv[2]) : 25;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, seed);
  const workload::Scenario initial{2.5, 0.02,
                                   workload::WorkloadKind::kHighLevel};
  auto venv = workload::make_scenario_venv(initial, cluster, seed + 1);

  const core::HmnMapper mapper;
  auto outcome = mapper.map(cluster, venv, seed);
  if (!outcome.ok()) {
    std::printf("initial mapping failed: %s\n", outcome.detail.c_str());
    return 1;
  }
  std::printf("initial: %zu guests mapped, lbf %.1f\n", venv.guest_count(),
              core::load_balance_factor(cluster, venv, *outcome.mapping));

  util::Rng rng(seed + 2);
  std::size_t full_remaps = 0;
  for (int wave = 1; wave <= waves; ++wave) {
    // The tester adds `per_wave` new emulated nodes, each linked to one
    // existing node (keeping the emulated network connected) and
    // occasionally to each other.
    const std::size_t before = venv.guest_count();
    for (int i = 0; i < per_wave; ++i) {
      const GuestId g = venv.add_guest({rng.uniform(50, 100),
                                        rng.uniform(128, 256),
                                        rng.uniform(100, 200)});
      const GuestId peer{
          static_cast<GuestId::underlying_type>(rng.index(before))};
      venv.add_link(g, peer, {rng.uniform(0.5, 1.0), rng.uniform(30, 60)});
      if (i > 0 && rng.chance(0.3)) {
        const GuestId sibling{static_cast<GuestId::underlying_type>(
            before + rng.index(static_cast<std::size_t>(i)))};
        venv.add_link(g, sibling, {rng.uniform(0.5, 1.0),
                                   rng.uniform(30, 60)});
      }
    }

    auto grown = core::extend_mapping(cluster, venv, *outcome.mapping);
    const char* how = "incremental";
    if (!grown.ok()) {
      // Residual capacity exhausted for this increment: full remap.
      grown = mapper.map(cluster, venv, seed + static_cast<std::uint64_t>(wave));
      how = "FULL REMAP";
      ++full_remaps;
      if (!grown.ok()) {
        std::printf("wave %d: cluster cannot absorb the growth (%s)\n", wave,
                    grown.detail.c_str());
        return 1;
      }
    }
    const bool valid =
        core::validate_mapping(cluster, venv, *grown.mapping).ok();
    std::printf("wave %d: +%d guests -> %zu total, %-11s in %.4f s, "
                "lbf %.1f, valid=%s\n",
                wave, per_wave, venv.guest_count(), how,
                grown.stats.total_seconds,
                core::load_balance_factor(cluster, venv, *grown.mapping),
                valid ? "yes" : "NO");
    outcome.mapping = grown.mapping;
  }
  std::printf("done: %d waves grown incrementally (%zu needed a full "
              "remap); %zu VMs deployed\n",
              waves, full_remaps, venv.guest_count());
  return 0;
}
