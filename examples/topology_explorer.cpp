// Map one virtual environment onto many cluster fabrics — the paper's
// Section 2 claim that HMN "can manage arbitrary cluster networks", which
// the related systems (V-eM: switch-only; NEPTUNE/V-DS: manual) cannot.
//
//   $ ./topology_explorer [guests] [seed]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "topology/topologies.h"
#include "util/table.h"
#include "workload/host_generator.h"
#include "workload/venv_generator.h"

using namespace hmn;

int main(int argc, char** argv) {
  const std::size_t guests =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 96;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  struct Fabric {
    const char* name;
    std::function<topology::Topology(util::Rng&)> build;
  };
  const std::vector<Fabric> fabrics{
      {"2-D torus 4x4", [](util::Rng&) { return topology::torus_2d(4, 4); }},
      {"switched 16x8p", [](util::Rng&) { return topology::switched(16, 8); }},
      {"ring 16", [](util::Rng&) { return topology::ring(16); }},
      {"line 16", [](util::Rng&) { return topology::line(16); }},
      {"star 16", [](util::Rng&) { return topology::star(16); }},
      {"hypercube d=4", [](util::Rng&) { return topology::hypercube(4); }},
      {"fat-tree k=4", [](util::Rng&) { return topology::fat_tree(4); }},
      {"random p=.3",
       [](util::Rng& rng) { return topology::random_cluster(16, 0.3, rng); }},
  };

  util::Table table({"fabric", "hosts", "switches", "links", "outcome",
                     "lbf", "inter-host", "hops/link", "time (s)"});
  const core::HmnMapper mapper;

  for (const Fabric& fabric : fabrics) {
    util::Rng rng(seed);
    auto topo = fabric.build(rng);
    const std::size_t hosts = topo.host_count();
    const std::size_t switches = topo.switch_count();
    auto caps =
        workload::generate_hosts(hosts, workload::paper_host_profile(), rng);
    const auto cluster = model::PhysicalCluster::build(
        std::move(topo), std::move(caps), workload::paper_link_props());

    // One shared virtual environment spec, regenerated per fabric with the
    // same seed so guest demands are identical everywhere.
    util::Rng vrng(seed + 1);
    workload::VenvGenOptions vopts;
    vopts.guest_count = guests;
    vopts.density = 0.05;
    vopts.profile = workload::high_level_profile();
    vopts.normalize_to = &cluster;
    const auto venv = workload::generate_venv(vopts, vrng);

    const auto out = mapper.map(cluster, venv, seed);
    if (!out.ok()) {
      table.add_row({fabric.name, std::to_string(hosts),
                     std::to_string(switches),
                     std::to_string(cluster.link_count()),
                     core::to_string(out.error), "-", "-", "-",
                     util::Table::fmt(out.stats.total_seconds, 4)});
      continue;
    }
    const bool valid =
        core::validate_mapping(cluster, venv, *out.mapping).ok();
    std::size_t hops = 0;
    for (const auto& path : out.mapping->link_paths) hops += path.size();
    const double hops_per_link =
        out.stats.links_routed > 0
            ? static_cast<double>(hops) /
                  static_cast<double>(out.stats.links_routed)
            : 0.0;
    table.add_row(
        {fabric.name, std::to_string(hosts), std::to_string(switches),
         std::to_string(cluster.link_count()), valid ? "ok" : "INVALID",
         util::Table::fmt(core::load_balance_factor(cluster, venv,
                                                    *out.mapping), 1),
         std::to_string(out.stats.links_routed),
         util::Table::fmt(hops_per_link, 2),
         util::Table::fmt(out.stats.total_seconds, 4)});
  }

  std::printf("HMN across cluster fabrics (%zu guests, density 0.05):\n%s",
              guests, table.to_string().c_str());
  return 0;
}
