// Multilevel mapping demo: admit a tenant onto a 4000-host switch-tree
// fabric through the coarsen–map–refine pipeline, with per-level progress
// printed as the pyramid is descended.  Compares wall clock and objective
// against the flat HMN mapper on the same instance.
#include <cstdio>
#include <memory>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "multilevel/multilevel_mapper.h"
#include "topology/topologies.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/host_generator.h"
#include "workload/presets.h"
#include "workload/venv_generator.h"

int main() {
  using namespace hmn;
  constexpr std::size_t kHosts = 4000;

  auto topo = topology::switch_tree(kHosts, 8, 4);
  model::LinkProps link = workload::paper_link_props();
  link.latency_ms = 2.0;  // short hops keep the 30-60 ms demands routable
  util::Rng rng(2009);
  auto caps =
      workload::generate_hosts(kHosts, workload::paper_host_profile(), rng);
  const auto fabric = model::PhysicalCluster::build(std::move(topo),
                                                    std::move(caps), link);
  std::printf("fabric: %zu hosts, %zu nodes, %zu links\n", fabric.host_count(),
              fabric.node_count(), fabric.link_count());

  workload::VenvGenOptions vopts;
  vopts.guest_count = 36;
  vopts.density = 0.2;
  vopts.profile = workload::high_level_profile();
  vopts.normalize_to = &fabric;
  const auto venv = workload::generate_venv(vopts, rng);
  std::printf("tenant: %zu guests, %zu virtual links\n\n", venv.guest_count(),
              venv.link_count());

  multilevel::MultilevelOptions opts;
  opts.observer = [](const multilevel::LevelEvent& e) {
    std::printf("  [%-16s] level %zu: %zu nodes, %zu guests in play\n",
                e.stage.c_str(), e.level, e.nodes, e.guests);
  };
  // Share the structural pyramid the way the placement router does: built
  // once per fabric, reused across admissions.
  util::Timer hier_timer;
  auto hier = std::make_shared<const multilevel::PhysicalHierarchy>(
      multilevel::build_hierarchy(fabric, opts.phys));
  std::printf("hierarchy: %zu levels built in %.1f ms\n",
              hier->level_count(), hier_timer.elapsed_seconds() * 1e3);
  const multilevel::MultilevelMapper mapper(opts, hier);

  util::Timer ml_timer;
  const core::MapOutcome ml = mapper.map(fabric, venv, 1);
  const double ml_ms = ml_timer.elapsed_seconds() * 1e3;
  if (!ml.ok()) {
    std::printf("multilevel mapping failed: %s\n", ml.detail.c_str());
    return 1;
  }
  const auto report = core::validate_mapping(fabric, venv, *ml.mapping);
  std::printf("\nmultilevel: %.1f ms, levels_used=%zu, %zu links routed, "
              "validator %s\n",
              ml_ms, ml.stats.levels_used, ml.stats.links_routed,
              report.ok() ? "clean" : report.summary().c_str());

  util::Timer flat_timer;
  const core::MapOutcome flat = core::HmnMapper().map(fabric, venv, 1);
  const double flat_ms = flat_timer.elapsed_seconds() * 1e3;
  if (flat.ok()) {
    std::printf("flat HMN:   %.1f ms (%.1fx slower)\n", flat_ms,
                flat_ms / std::max(ml_ms, 1e-9));
    std::printf("objective (Eq. 10): multilevel %.2f vs flat %.2f\n",
                core::load_balance_factor(fabric, venv, *ml.mapping),
                core::load_balance_factor(fabric, venv, *flat.mapping));
  }
  return report.ok() ? 0 : 1;
}
