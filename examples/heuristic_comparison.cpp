// Compare every mapper in the library on one instance — the per-instance
// view of the paper's Table 2 columns, plus the Section 6 extensions.
//
//   $ ./heuristic_comparison [ratio] [density] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/composite_mappers.h"
#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "extensions/heuristic_pool.h"
#include "extensions/min_hosts_mapper.h"
#include "extensions/objectives.h"
#include "util/table.h"
#include "workload/scenario.h"

using namespace hmn;

int main(int argc, char** argv) {
  const double ratio = argc > 1 ? std::atof(argv[1]) : 5.0;
  const double density = argc > 2 ? std::atof(argv[2]) : 0.02;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  const workload::Scenario scenario{
      ratio, density,
      ratio > 10.0 ? workload::WorkloadKind::kLowLevel
                   : workload::WorkloadKind::kHighLevel};

  baselines::BaselineOptions bopts;
  bopts.max_tries = 100;
  std::vector<core::MapperPtr> mappers;
  mappers.push_back(std::make_unique<core::HmnMapper>());
  mappers.push_back(std::make_unique<baselines::RandomDfsMapper>(bopts));
  mappers.push_back(std::make_unique<baselines::RandomAStarMapper>(bopts));
  mappers.push_back(std::make_unique<baselines::HostingSearchMapper>(bopts));
  mappers.push_back(std::make_unique<extensions::MinHostsMapper>());

  const extensions::MinHostsObjective hosts_used;

  for (const auto kind : {workload::ClusterKind::kTorus2D,
                          workload::ClusterKind::kSwitched}) {
    const auto cluster = workload::make_paper_cluster(kind, seed);
    const auto venv =
        workload::make_scenario_venv(scenario, cluster, seed + 1);
    std::printf("\n=== %s cluster, scenario %s (%zu guests, %zu links)\n",
                to_string(kind), scenario.label().c_str(), venv.guest_count(),
                venv.link_count());

    util::Table table({"mapper", "outcome", "lbf (Eq.10)", "hosts used",
                       "map time (s)", "tries", "valid"});
    for (const auto& mapper : mappers) {
      const auto out = mapper->map(cluster, venv, seed);
      if (out.ok()) {
        const bool valid =
            core::validate_mapping(cluster, venv, *out.mapping).ok();
        table.add_row(
            {mapper->name(), "ok",
             util::Table::fmt(
                 core::load_balance_factor(cluster, venv, *out.mapping), 1),
             util::Table::fmt(hosts_used.evaluate(cluster, venv, *out.mapping),
                              0),
             util::Table::fmt(out.stats.total_seconds, 4),
             std::to_string(out.stats.tries), valid ? "yes" : "NO"});
      } else {
        table.add_row({mapper->name(), core::to_string(out.error), "-", "-",
                       util::Table::fmt(out.stats.total_seconds, 4),
                       std::to_string(out.stats.tries), "-"});
      }
    }
    std::printf("%s", table.to_string().c_str());
  }

  // The Section 6 heuristic pool: HMN with an RA fallback.
  const auto pool = extensions::default_pool();
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, seed);
  const auto venv = workload::make_scenario_venv(scenario, cluster, seed + 1);
  const auto pooled = pool.first_success(cluster, venv, seed);
  std::printf("\nheuristic pool (HMN -> RA fallback): %s\n",
              pooled.ok() ? "mapped" : pooled.detail.c_str());
  return 0;
}
