// Grid-application emulation (the paper's high-level use case, Section 5):
// a tester wants to evaluate grid/cloud middleware on 200 emulated nodes
// with full software stacks, hosted on the paper's 40-node torus cluster.
//
//   $ ./grid_emulation [seed]
//
// Demonstrates: paper workload presets, HMN mapping, per-stage timing,
// the emulation-experiment simulator, and DOT export of the result.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "io/dot.h"
#include "sim/experiment.h"
#include "workload/scenario.h"

using namespace hmn;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  // The paper's torus cluster: 40 heterogeneous hosts (Table 1).
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, seed);

  // High-level workload at ratio 5:1 (200 guests), density 0.02: VMs with
  // OS + middleware + application, 128-256 MB each.
  const workload::Scenario scenario{5.0, 0.02,
                                    workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(scenario, cluster, seed + 1);
  std::printf("emulating %zu grid nodes with %zu virtual links on %zu hosts\n",
              venv.guest_count(), venv.link_count(), cluster.host_count());

  const core::HmnMapper mapper;
  const auto outcome = mapper.map(cluster, venv, seed);
  if (!outcome.ok()) {
    std::printf("mapping failed: %s\n", outcome.detail.c_str());
    return 1;
  }
  const auto report = core::validate_mapping(cluster, venv, *outcome.mapping);
  if (!report.ok()) {
    std::printf("validator rejected the mapping:\n%s\n",
                report.summary().c_str());
    return 1;
  }

  std::printf("stage times: hosting %.3f ms, migration %.3f ms (%zu moves), "
              "networking %.3f ms\n",
              outcome.stats.hosting_seconds * 1e3,
              outcome.stats.migration_seconds * 1e3,
              outcome.stats.migrations,
              outcome.stats.networking_seconds * 1e3);
  std::printf("load-balance factor: %.2f MIPS\n",
              core::load_balance_factor(cluster, venv, *outcome.mapping));
  std::printf("inter-host links routed: %zu of %zu\n",
              outcome.stats.links_routed, venv.link_count());

  // Estimate how long a 10-iteration BSP grid application would run on
  // this mapping.
  sim::ExperimentSpec spec;
  spec.iterations = 10;
  spec.compute_seconds = 5.0;
  spec.message_kb = 256.0;
  spec.seed = seed;
  const auto result = sim::run_experiment(cluster, venv, *outcome.mapping,
                                          spec);
  std::printf("simulated experiment: makespan %.1f s, %llu messages, "
              "%llu events\n",
              result.makespan_seconds,
              static_cast<unsigned long long>(result.messages_delivered),
              static_cast<unsigned long long>(result.events_processed));

  // Export the mapping for visual inspection with graphviz.
  std::ofstream dot("grid_emulation_mapping.dot");
  dot << io::to_dot(cluster, venv, *outcome.mapping);
  std::printf("wrote grid_emulation_mapping.dot (render with: "
              "dot -Tsvg grid_emulation_mapping.dot)\n");
  return 0;
}
